//! FxHash-style hashing for integer-keyed maps.
//!
//! The default `std` hasher (SipHash 1-3) is collision-resistant but slow
//! for the small integer keys that dominate graph code. This module
//! provides the multiply-rotate hash used by rustc ("FxHash"), hand-rolled
//! to keep the workspace dependency-light.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-rotate hasher.
///
/// Not HashDoS-resistant; fine here because all keys are internal vertex
/// and node ids, never attacker-controlled strings.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_dedup() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100u64 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_matches_padding_semantics() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
    }
}
