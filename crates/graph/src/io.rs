//! Graph readers and writers.
//!
//! Two formats are supported:
//!
//! * **Text edge list** — one `u v` pair per line, `#`/`%` comments, any
//!   whitespace separator. This is the format SNAP and most public graph
//!   repositories distribute.
//! * **Compact binary** — a little-endian dump of the CSR arrays with a
//!   magic header, for fast reload of generated benchmark graphs.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::build_from_edges;
use crate::csr::{CsrGraph, VertexId};
use crate::error::GraphError;

const BINARY_MAGIC: &[u8; 8] = b"HCDCSR01";

/// Parses a text edge list from any reader.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Each data
/// line must contain at least two integer tokens; extra tokens (e.g.
/// weights or timestamps) are ignored. The result is symmetrized and
/// deduplicated.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let buf = BufReader::new(reader);
    let mut line = String::new();
    let mut buf = buf;
    let mut lineno = 0usize;
    let mut min_vertices = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            // Our own writer records the vertex count in the header so
            // trailing isolated vertices survive a roundtrip; foreign
            // files without it lose nothing they could express.
            if let Some(n) = trimmed
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("n=").and_then(|x| x.parse().ok()))
            {
                min_vertices = min_vertices.max(n);
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_token(it.next(), lineno)?;
        let v = parse_token(it.next(), lineno)?;
        edges.push((u, v));
    }
    Ok(build_from_edges(edges, min_vertices))
}

fn parse_token(tok: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    tok.parse::<VertexId>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid vertex id {tok:?}: {e}"),
    })
}

/// Reads a text edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_edge_list(File::open(path)?)
}

/// Writes a graph as a text edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# hcd edge list: n={} m={}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the compact binary CSR format.
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_arcs() as u64).to_le_bytes())?;
    for &off in g.offsets() {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &nb in g.raw_neighbors() {
        w.write_all(&nb.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the compact binary CSR format to a file path.
pub fn write_binary_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    write_binary(g, File::create(path)?)
}

/// Reads the compact binary CSR format, validating all invariants.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Format("bad magic header".into()));
    }
    let n = read_u64(&mut r)? as usize;
    let arcs = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&arcs) {
        return Err(GraphError::Format("inconsistent offsets".into()));
    }
    let mut neighbors = Vec::with_capacity(arcs);
    let mut buf = [0u8; 4];
    for _ in 0..arcs {
        r.read_exact(&mut buf)?;
        neighbors.push(u32::from_le_bytes(buf));
    }
    let g = CsrGraph::from_csr(offsets, neighbors);
    g.check_invariants().map_err(GraphError::Format)?;
    Ok(g)
}

/// Reads the compact binary CSR format from a file path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_binary(File::open(path)?)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)])
            .build()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_parses_comments_and_extra_columns() {
        let text = "# comment\n% another\n\n0 1 42 weight\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn text_reports_parse_error_with_line() {
        let text = "0 1\nx y\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_requires_two_tokens() {
        let text = "0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC".to_vec();
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::Format(_)) | Err(GraphError::Io(_))
        ));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("hcd_io_test.bin");
        write_binary_file(&g, &path).unwrap();
        let g2 = read_binary_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }
}
