//! Graph readers and writers.
//!
//! Two formats are supported:
//!
//! * **Text edge list** — one `u v` pair per line, `#`/`%` comments, any
//!   whitespace separator. This is the format SNAP and most public graph
//!   repositories distribute.
//! * **Compact binary** — a little-endian dump of the CSR arrays with a
//!   magic header, for fast reload of generated benchmark graphs. Two
//!   versions exist: v1 (`HCDCSR01`, legacy, unchecksummed) and v2
//!   (`HCDCSR02`, written by default, with a CRC32 over the payload so
//!   bit rot and torn writes are detected on load). `read_binary`
//!   auto-detects the version; errors are typed ([`IoFormatError`]) so
//!   callers can tell truncation (torn write) from corruption.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::build_from_edges;
use crate::crc32::crc32;
use crate::csr::{CsrGraph, VertexId};
use crate::error::{GraphError, IoFormatError};

/// Magic tag of the legacy (unchecksummed) binary format.
pub const BINARY_MAGIC_V1: &[u8; 8] = b"HCDCSR01";
/// Magic tag of the checksummed binary format: the payload that follows
/// the magic + CRC header is covered by a CRC32.
pub const BINARY_MAGIC_V2: &[u8; 8] = b"HCDCSR02";

/// Fixed bytes of the v1/v2 payload before the variable-length arrays:
/// vertex count `u64` + arc count `u64`.
const PAYLOAD_HEADER_LEN: u64 = 16;

/// Parses a text edge list from any reader.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Each data
/// line must contain at least two integer tokens; extra tokens (e.g.
/// weights or timestamps) are ignored. The result is symmetrized and
/// deduplicated.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let buf = BufReader::new(reader);
    let mut line = String::new();
    let mut buf = buf;
    let mut lineno = 0usize;
    let mut min_vertices = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            // Our own writer records the vertex count in the header so
            // trailing isolated vertices survive a roundtrip; foreign
            // files without it lose nothing they could express.
            if let Some(n) = trimmed
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("n=").and_then(|x| x.parse().ok()))
            {
                min_vertices = min_vertices.max(n);
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_token(it.next(), lineno)?;
        let v = parse_token(it.next(), lineno)?;
        edges.push((u, v));
    }
    Ok(build_from_edges(edges, min_vertices))
}

fn parse_token(tok: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    tok.parse::<VertexId>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid vertex id {tok:?}: {e}"),
    })
}

/// Reads a text edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_edge_list(File::open(path)?)
}

/// Writes a graph as a text edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# hcd edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes the CSR payload shared by both binary format versions:
/// `n u64 | arcs u64 | offsets (n+1)×u64 | neighbors arcs×u32`, all
/// little-endian.
fn binary_payload(g: &CsrGraph) -> Vec<u8> {
    let mut payload = Vec::with_capacity(
        PAYLOAD_HEADER_LEN as usize + (g.num_vertices() + 1) * 8 + g.num_arcs() * 4,
    );
    payload.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    payload.extend_from_slice(&(g.num_arcs() as u64).to_le_bytes());
    for &off in g.offsets() {
        payload.extend_from_slice(&(off as u64).to_le_bytes());
    }
    for &nb in g.raw_neighbors() {
        payload.extend_from_slice(&nb.to_le_bytes());
    }
    payload
}

/// Writes the checksummed (v2) binary CSR format: magic, CRC32 of the
/// payload, payload. This is the format all new files are written in.
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    let payload = binary_payload(g);
    w.write_all(BINARY_MAGIC_V2)?;
    w.write_all(&crc32(&payload).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Writes the legacy (v1, unchecksummed) binary format. Kept so the
/// v1 read path stays covered by tests and old tooling can be fed.
pub fn write_binary_v1<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC_V1)?;
    w.write_all(&binary_payload(g))?;
    w.flush()?;
    Ok(())
}

/// Writes the compact binary CSR format to a file path.
pub fn write_binary_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    write_binary(g, File::create(path)?)
}

/// Reads the compact binary CSR format (either version), validating the
/// checksum (v2) and all structural invariants.
///
/// The whole stream is buffered before parsing; vectors only ever grow
/// to the number of bytes actually present, so a corrupt header claiming
/// `2^60` arcs fails with a typed [`IoFormatError::TooShort`] before any
/// payload allocation.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    read_exact_or(&mut r, &mut magic, "magic header")?;
    match &magic {
        m if m == BINARY_MAGIC_V1 => {
            let mut payload = Vec::new();
            r.read_to_end(&mut payload)?;
            // v1 streams historically tolerated trailing bytes; keep that.
            parse_binary_payload(&payload, false)
        }
        m if m == BINARY_MAGIC_V2 => {
            let mut crc_buf = [0u8; 4];
            read_exact_or(&mut r, &mut crc_buf, "payload checksum")?;
            let expected = u32::from_le_bytes(crc_buf);
            let mut payload = Vec::new();
            r.read_to_end(&mut payload)?;
            // Size classification first: a short payload is a torn write
            // (TooShort), not corruption, even though its CRC also fails.
            let g = parse_binary_payload(&payload, true)?;
            let actual = crc32(&payload);
            if actual != expected {
                return Err(IoFormatError::CrcMismatch { expected, actual }.into());
            }
            Ok(g)
        }
        _ => Err(IoFormatError::BadMagic(magic).into()),
    }
}

/// Parses the shared CSR payload, checking header-implied size against
/// the bytes actually present *before* allocating the arrays.
fn parse_binary_payload(payload: &[u8], strict_len: bool) -> Result<CsrGraph, GraphError> {
    if payload.len() < PAYLOAD_HEADER_LEN as usize {
        return Err(IoFormatError::Truncated {
            context: "count header",
        }
        .into());
    }
    let n_raw = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let arcs_raw = u64::from_le_bytes(payload[8..16].try_into().unwrap());
    // Header sanity before any allocation: vertex ids are u32, and both
    // counts must be addressable on this platform (with room for n + 1
    // offsets).
    if n_raw > u32::MAX as u64 {
        return Err(IoFormatError::CountOverflow {
            what: "vertex",
            value: n_raw,
        }
        .into());
    }
    let n = usize::try_from(n_raw)
        .ok()
        .filter(|n| n.checked_add(1).is_some())
        .ok_or(IoFormatError::CountOverflow {
            what: "vertex",
            value: n_raw,
        })?;
    let arcs = usize::try_from(arcs_raw).map_err(|_| IoFormatError::CountOverflow {
        what: "arc",
        value: arcs_raw,
    })?;
    // Reject headers that imply more bytes than are present before any
    // array allocation: a fabricated count can ask for terabytes, but the
    // actual byte count bounds what we will ever allocate.
    let needed = PAYLOAD_HEADER_LEN
        .checked_add(
            (n as u64 + 1)
                .checked_mul(8)
                .ok_or(IoFormatError::CountOverflow {
                    what: "vertex",
                    value: n_raw,
                })?,
        )
        .and_then(|b| b.checked_add((arcs as u64).checked_mul(4)?))
        .ok_or(IoFormatError::CountOverflow {
            what: "arc",
            value: arcs_raw,
        })?;
    let actual = payload.len() as u64;
    if actual < needed {
        return Err(IoFormatError::TooShort { needed, actual }.into());
    }
    if strict_len && actual > needed {
        return Err(IoFormatError::Invalid(format!(
            "{} trailing bytes after payload",
            actual - needed
        ))
        .into());
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut prev = 0u64;
    let mut cursor = PAYLOAD_HEADER_LEN as usize;
    for i in 0..=n {
        let off = u64::from_le_bytes(payload[cursor..cursor + 8].try_into().unwrap());
        cursor += 8;
        if off < prev {
            return Err(IoFormatError::Invalid(format!(
                "offset {off} at index {i} decreases (previous {prev})"
            ))
            .into());
        }
        if off > arcs_raw {
            return Err(IoFormatError::Invalid(format!(
                "offset {off} at index {i} exceeds arc count {arcs_raw}"
            ))
            .into());
        }
        prev = off;
        offsets.push(off as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&arcs) {
        return Err(IoFormatError::Invalid("inconsistent offsets".into()).into());
    }
    let mut neighbors = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        let nb = u32::from_le_bytes(payload[cursor..cursor + 4].try_into().unwrap());
        cursor += 4;
        if nb as usize >= n {
            return Err(IoFormatError::Invalid(format!(
                "neighbor id {nb} out of range for {n} vertices"
            ))
            .into());
        }
        neighbors.push(nb);
    }
    let g = CsrGraph::from_csr(offsets, neighbors);
    g.check_invariants()
        .map_err(|m| GraphError::Binary(IoFormatError::Invalid(m)))?;
    Ok(g)
}

/// Reads the compact binary CSR format from a file path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_binary(File::open(path)?)
}

/// Like `read_exact` but maps the short-read case to a typed truncation
/// error instead of a bare `UnexpectedEof` io error.
fn read_exact_or<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), GraphError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            GraphError::Binary(IoFormatError::Truncated { context })
        } else {
            GraphError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)])
            .build()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_parses_comments_and_extra_columns() {
        let text = "# comment\n% another\n\n0 1 42 weight\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn text_reports_parse_error_with_line() {
        let text = "0 1\nx y\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_requires_two_tokens() {
        let text = "0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(&buf[..8], BINARY_MAGIC_V2);
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_v1_files_still_load() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_v1(&g, &mut buf).unwrap();
        assert_eq!(&buf[..8], BINARY_MAGIC_V1);
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC".to_vec();
        match read_binary(&buf[..]) {
            Err(GraphError::Binary(IoFormatError::BadMagic(m))) => assert_eq!(&m, b"NOTMAGIC"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_truncation_as_typed_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        match read_binary(&buf[..]) {
            Err(GraphError::Binary(e)) => assert!(e.is_truncation(), "got {e:?}"),
            other => panic!("expected typed truncation, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_truncation_at_every_header_byte_offset() {
        // Chop a valid file at every byte offset of the (magic + crc +
        // count) header region, for both format versions. Every prefix
        // must fail with a typed truncation-class error — never a panic,
        // never an allocation driven by a half-read count.
        let g = sample();
        for version in ["v1", "v2"] {
            let mut buf = Vec::new();
            if version == "v1" {
                write_binary_v1(&g, &mut buf).unwrap();
            } else {
                write_binary(&g, &mut buf).unwrap();
            }
            let header_len = if version == "v1" { 8 + 16 } else { 8 + 4 + 16 };
            for cut in 0..header_len {
                let prefix = &buf[..cut];
                match read_binary(prefix) {
                    Err(GraphError::Binary(e)) => assert!(
                        e.is_truncation(),
                        "{version} cut at {cut}: expected truncation, got {e:?}"
                    ),
                    other => panic!("{version} cut at {cut}: expected Err, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn binary_rejects_header_implying_more_bytes_than_present() {
        // A plausible small header whose counts nonetheless exceed the
        // actual byte count must fail with TooShort before allocating.
        let mut buf = BINARY_MAGIC_V1.to_vec();
        buf.extend_from_slice(&8u64.to_le_bytes()); // n = 8
        buf.extend_from_slice(&1_000_000u64.to_le_bytes()); // arcs = 1e6
        buf.extend_from_slice(&[0u8; 64]); // nowhere near enough payload
        match read_binary(&buf[..]) {
            Err(GraphError::Binary(IoFormatError::TooShort { needed, actual })) => {
                assert!(needed > actual, "needed {needed} vs actual {actual}");
            }
            other => panic!("expected TooShort, got {other:?}"),
        }
    }

    #[test]
    fn binary_v2_detects_payload_corruption_via_crc() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Flip one bit in the neighbor array (last payload byte region)
        // such that the file still parses structurally.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        match read_binary(&buf[..]) {
            Err(GraphError::Binary(e)) => assert!(!e.is_truncation(), "got {e:?}"),
            other => panic!("expected corruption error, got {other:?}"),
        }
        // Flip a bit in the stored CRC itself: payload parses fine, the
        // checksum comparison must catch it.
        buf[last] ^= 0x01;
        buf[9] ^= 0x80;
        match read_binary(&buf[..]) {
            Err(GraphError::Binary(IoFormatError::CrcMismatch { .. })) => {}
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_giant_header_counts_without_allocating() {
        // Claims u32::MAX vertices / near-u64::MAX arcs with no payload.
        // Must return Err promptly instead of preallocating terabytes.
        let mut buf = BINARY_MAGIC_V1.to_vec();
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
        buf.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(read_binary(&buf[..]).is_err());

        // Vertex count beyond the u32 id space is rejected by the header
        // sanity check itself.
        let mut buf = BINARY_MAGIC_V1.to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_binary(&buf[..]) {
            Err(GraphError::Binary(IoFormatError::CountOverflow { what, .. })) => {
                assert_eq!(what, "vertex")
            }
            other => panic!("expected CountOverflow, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_decreasing_and_overflowing_offsets() {
        // n=2, arcs=2, offsets [0, 3, 2]: 3 > arcs and 2 < 3.
        let mut buf = BINARY_MAGIC_V1.to_vec();
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        for off in [0u64, 3, 2] {
            buf.extend_from_slice(&off.to_le_bytes());
        }
        buf.extend_from_slice(&[0u8; 8]); // neighbor bytes so length adds up
        match read_binary(&buf[..]) {
            Err(GraphError::Binary(IoFormatError::Invalid(msg))) => {
                assert!(msg.contains("exceeds arc count"))
            }
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_out_of_range_neighbor() {
        // n=2, arcs=2, valid offsets, but a neighbor id of 7.
        let mut buf = BINARY_MAGIC_V1.to_vec();
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        for off in [0u64, 1, 2] {
            buf.extend_from_slice(&off.to_le_bytes());
        }
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        match read_binary(&buf[..]) {
            Err(GraphError::Binary(IoFormatError::Invalid(msg))) => {
                assert!(msg.contains("out of range"))
            }
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn binary_survives_random_corrupt_headers() {
        // Fuzz-style: seeded SplitMix64 generates random headers (valid
        // magic, adversarial counts) followed by random payload bytes.
        // Every outcome must be a clean Err — no panic, no abort, no
        // giant allocation. Valid graphs are astronomically unlikely from
        // random bytes, and the assertions below would catch one anyway.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for round in 0..400 {
            // Alternate between the two magics so both read paths face
            // the same adversarial headers.
            let magic = if round % 2 == 0 {
                BINARY_MAGIC_V1
            } else {
                BINARY_MAGIC_V2
            };
            let mut buf = magic.to_vec();
            // Mix of plausible-small and absurd-large header counts.
            let n = match round % 4 {
                0 => next() % 16,
                1 => next(),
                2 => u32::MAX as u64 + next() % 1024,
                _ => next() % (1 << 40),
            };
            let arcs = match round % 3 {
                0 => next() % 32,
                1 => next(),
                _ => next() % (1 << 50),
            };
            if magic == BINARY_MAGIC_V2 {
                buf.extend_from_slice(&(next() as u32).to_le_bytes());
            }
            buf.extend_from_slice(&n.to_le_bytes());
            buf.extend_from_slice(&arcs.to_le_bytes());
            let tail = (next() % 256) as usize;
            for _ in 0..tail {
                buf.push(next() as u8);
            }
            assert!(
                read_binary(&buf[..]).is_err(),
                "round {round}: corrupt header (n={n}, arcs={arcs}, tail={tail}) was accepted"
            );
        }
    }

    #[test]
    fn binary_survives_truncation_at_every_offset_of_small_file() {
        // Beyond the header: truncating a full valid v2 file at *every*
        // byte offset must yield a typed error, never a panic.
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                read_binary(&buf[..cut]).is_err(),
                "prefix of {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("hcd_io_test.bin");
        write_binary_file(&g, &path).unwrap();
        let g2 = read_binary_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }
}
