//! Graph readers and writers.
//!
//! Two formats are supported:
//!
//! * **Text edge list** — one `u v` pair per line, `#`/`%` comments, any
//!   whitespace separator. This is the format SNAP and most public graph
//!   repositories distribute.
//! * **Compact binary** — a little-endian dump of the CSR arrays with a
//!   magic header, for fast reload of generated benchmark graphs.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::build_from_edges;
use crate::csr::{CsrGraph, VertexId};
use crate::error::GraphError;

const BINARY_MAGIC: &[u8; 8] = b"HCDCSR01";

/// Upper bound on the number of elements `read_binary` preallocates from
/// header-declared sizes. A corrupt header can claim up to `u64::MAX`
/// vertices or arcs; trusting it in `Vec::with_capacity` would abort the
/// process on allocation failure before a single payload byte is read.
/// Beyond this bound the vectors grow geometrically as real data arrives,
/// so truncated or fabricated inputs fail with `Err` instead.
const MAX_PREALLOC: usize = 1 << 20;

/// Parses a text edge list from any reader.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Each data
/// line must contain at least two integer tokens; extra tokens (e.g.
/// weights or timestamps) are ignored. The result is symmetrized and
/// deduplicated.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let buf = BufReader::new(reader);
    let mut line = String::new();
    let mut buf = buf;
    let mut lineno = 0usize;
    let mut min_vertices = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            // Our own writer records the vertex count in the header so
            // trailing isolated vertices survive a roundtrip; foreign
            // files without it lose nothing they could express.
            if let Some(n) = trimmed
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("n=").and_then(|x| x.parse().ok()))
            {
                min_vertices = min_vertices.max(n);
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_token(it.next(), lineno)?;
        let v = parse_token(it.next(), lineno)?;
        edges.push((u, v));
    }
    Ok(build_from_edges(edges, min_vertices))
}

fn parse_token(tok: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    tok.parse::<VertexId>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid vertex id {tok:?}: {e}"),
    })
}

/// Reads a text edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_edge_list(File::open(path)?)
}

/// Writes a graph as a text edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# hcd edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the compact binary CSR format.
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_arcs() as u64).to_le_bytes())?;
    for &off in g.offsets() {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &nb in g.raw_neighbors() {
        w.write_all(&nb.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the compact binary CSR format to a file path.
pub fn write_binary_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    write_binary(g, File::create(path)?)
}

/// Reads the compact binary CSR format, validating all invariants.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Format("bad magic header".into()));
    }
    let n_raw = read_u64(&mut r)?;
    let arcs_raw = read_u64(&mut r)?;
    // Header sanity before any allocation: vertex ids are u32, and both
    // counts must be addressable on this platform (with room for n + 1
    // offsets).
    if n_raw > u32::MAX as u64 {
        return Err(GraphError::Format(format!(
            "header vertex count {n_raw} exceeds u32 id space"
        )));
    }
    let n = usize::try_from(n_raw)
        .ok()
        .filter(|n| n.checked_add(1).is_some())
        .ok_or_else(|| {
            GraphError::Format(format!("header vertex count {n_raw} not addressable"))
        })?;
    let arcs = usize::try_from(arcs_raw)
        .map_err(|_| GraphError::Format(format!("header arc count {arcs_raw} not addressable")))?;
    // Never trust header-declared sizes for preallocation: a corrupt
    // header asking for 2^60 entries must fail with Err, not abort on
    // allocation. Past MAX_PREALLOC the Vec grows as data is actually
    // read, so a short stream errors out long before memory does.
    let mut offsets = Vec::with_capacity((n + 1).min(MAX_PREALLOC));
    let mut prev = 0u64;
    for i in 0..=n {
        let off = read_u64(&mut r)?;
        if off < prev {
            return Err(GraphError::Format(format!(
                "offset {off} at index {i} decreases (previous {prev})"
            )));
        }
        if off > arcs_raw {
            return Err(GraphError::Format(format!(
                "offset {off} at index {i} exceeds arc count {arcs_raw}"
            )));
        }
        prev = off;
        offsets.push(off as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&arcs) {
        return Err(GraphError::Format("inconsistent offsets".into()));
    }
    let mut neighbors = Vec::with_capacity(arcs.min(MAX_PREALLOC));
    let mut buf = [0u8; 4];
    for _ in 0..arcs {
        r.read_exact(&mut buf)?;
        let nb = u32::from_le_bytes(buf);
        if nb as usize >= n {
            return Err(GraphError::Format(format!(
                "neighbor id {nb} out of range for {n} vertices"
            )));
        }
        neighbors.push(nb);
    }
    let g = CsrGraph::from_csr(offsets, neighbors);
    g.check_invariants().map_err(GraphError::Format)?;
    Ok(g)
}

/// Reads the compact binary CSR format from a file path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_binary(File::open(path)?)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)])
            .build()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_parses_comments_and_extra_columns() {
        let text = "# comment\n% another\n\n0 1 42 weight\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn text_reports_parse_error_with_line() {
        let text = "0 1\nx y\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_requires_two_tokens() {
        let text = "0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC".to_vec();
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::Format(_)) | Err(GraphError::Io(_))
        ));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_giant_header_counts_without_allocating() {
        // Claims u32::MAX vertices / near-u64::MAX arcs with no payload.
        // Must return Err promptly instead of preallocating terabytes.
        let mut buf = BINARY_MAGIC.to_vec();
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
        buf.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(read_binary(&buf[..]).is_err());

        // Vertex count beyond the u32 id space is rejected by the header
        // sanity check itself.
        let mut buf = BINARY_MAGIC.to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_binary(&buf[..]) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("u32 id space")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_decreasing_and_overflowing_offsets() {
        // n=2, arcs=2, offsets [0, 3, 2]: 3 > arcs and 2 < 3.
        let mut buf = BINARY_MAGIC.to_vec();
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        for off in [0u64, 3, 2] {
            buf.extend_from_slice(&off.to_le_bytes());
        }
        match read_binary(&buf[..]) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("exceeds arc count")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_out_of_range_neighbor() {
        // n=2, arcs=2, valid offsets, but a neighbor id of 7.
        let mut buf = BINARY_MAGIC.to_vec();
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        for off in [0u64, 1, 2] {
            buf.extend_from_slice(&off.to_le_bytes());
        }
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        match read_binary(&buf[..]) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("out of range")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn binary_survives_random_corrupt_headers() {
        // Fuzz-style: seeded SplitMix64 generates random headers (valid
        // magic, adversarial counts) followed by random payload bytes.
        // Every outcome must be a clean Err — no panic, no abort, no
        // giant allocation. Valid graphs are astronomically unlikely from
        // random bytes, and the assertions below would catch one anyway.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for round in 0..200 {
            let mut buf = BINARY_MAGIC.to_vec();
            // Mix of plausible-small and absurd-large header counts.
            let n = match round % 4 {
                0 => next() % 16,
                1 => next(),
                2 => u32::MAX as u64 + next() % 1024,
                _ => next() % (1 << 40),
            };
            let arcs = match round % 3 {
                0 => next() % 32,
                1 => next(),
                _ => next() % (1 << 50),
            };
            buf.extend_from_slice(&n.to_le_bytes());
            buf.extend_from_slice(&arcs.to_le_bytes());
            let tail = (next() % 256) as usize;
            for _ in 0..tail {
                buf.push(next() as u8);
            }
            assert!(
                read_binary(&buf[..]).is_err(),
                "round {round}: corrupt header (n={n}, arcs={arcs}, tail={tail}) was accepted"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("hcd_io_test.bin");
        write_binary_file(&g, &path).unwrap();
        let g2 = read_binary_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }
}
