//! Dynamic graphs: incremental core maintenance.
//!
//! Real networks change; recomputing the core decomposition from scratch
//! after every edge update wastes the locality of the change. The paper
//! points to hierarchical core *maintenance* \[15\] as the dynamic
//! counterpart of PHCD; this crate provides the foundation:
//!
//! * [`DynamicGraph`] — an adjacency-set graph supporting edge insertion
//!   and removal, convertible to/from [`hcd_graph::CsrGraph`];
//! * [`DynamicCore`] — coreness maintained incrementally with the
//!   parallel batch-dynamic scheme of Liu et al., *Parallel
//!   Batch-Dynamic Algorithms for k-Core Decomposition and Related
//!   Graph Problems* (SPAA 2022, see PAPERS.md): after mutating the
//!   edge set, an h-index-style *peel* fixpoint handles all coreness
//!   decreases of the whole batch at once, then round-based *promote*
//!   phases raise values level by level to the exact new coreness —
//!   cost proportional to the affected region, not the graph;
//! * **batched updates** — [`DynamicCore::apply_batch`] applies a whole
//!   [`EdgeUpdate`] batch and reports the exact changed region
//!   ([`BatchReport`]): the vertices whose coreness moved plus the
//!   endpoints the applied updates touched, which is exactly the dirty
//!   seed set the serving layer hands to the surgical hierarchy repair
//!   ([`hcd_core::Hcd::repair`]). The parallel phases run through
//!   [`hcd_par::Executor`] regions (`dynamic.peel`, `dynamic.promote`)
//!   so cancellation, deadlines, fault injection, and metrics govern
//!   maintenance exactly as they govern construction, with counters
//!   `dynamic.affected_vertices` / `dynamic.traversal_edges` reporting
//!   how small the touched region actually was;
//! * on-demand HCD refresh: the hierarchy is rebuilt with PHCD only when
//!   queried after updates; the serving layer instead repairs its
//!   published forest surgically from the batch report.
//!
//! Every update path is property-tested against full recomputation.

pub mod graph;
pub mod maintain;

pub use graph::DynamicGraph;
pub use maintain::{BatchReport, DynamicCore, EdgeUpdate};
