//! Dynamic graphs: incremental core maintenance.
//!
//! Real networks change; recomputing the core decomposition from scratch
//! after every edge update wastes the locality of the change. The paper
//! points to hierarchical core *maintenance* \[15\] as the dynamic
//! counterpart of PHCD; this crate provides the foundation:
//!
//! * [`DynamicGraph`] — an adjacency-set graph supporting edge insertion
//!   and removal, convertible to/from [`hcd_graph::CsrGraph`];
//! * [`DynamicCore`] — coreness maintained incrementally with the
//!   traversal algorithm (Sariyüce et al., PVLDB 2013; Li, Yu & Mao,
//!   TKDE 2014): an edge update changes coreness by at most one, and only
//!   inside the *subcore* reachable from the update through vertices of
//!   the same coreness — typically a tiny region;
//! * on-demand HCD refresh: the hierarchy is rebuilt with PHCD only when
//!   queried after updates (true incremental hierarchy maintenance is
//!   the subject of \[15\] and left as future work, as in the paper).
//!
//! Every update path is property-tested against full recomputation.

pub mod graph;
pub mod maintain;

pub use graph::DynamicGraph;
pub use maintain::DynamicCore;
