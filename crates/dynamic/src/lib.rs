//! Dynamic graphs: incremental core maintenance.
//!
//! Real networks change; recomputing the core decomposition from scratch
//! after every edge update wastes the locality of the change. The paper
//! points to hierarchical core *maintenance* \[15\] as the dynamic
//! counterpart of PHCD; this crate provides the foundation:
//!
//! * [`DynamicGraph`] — an adjacency-set graph supporting edge insertion
//!   and removal, convertible to/from [`hcd_graph::CsrGraph`];
//! * [`DynamicCore`] — coreness maintained incrementally with the
//!   traversal algorithm (Sariyüce et al., PVLDB 2013; Li, Yu & Mao,
//!   TKDE 2014): an edge update changes coreness by at most one, and only
//!   inside the *subcore* reachable from the update through vertices of
//!   the same coreness — typically a tiny region;
//! * **batched updates** — [`DynamicCore::apply_batch`] applies a whole
//!   [`EdgeUpdate`] batch and reports the exact changed region
//!   ([`BatchReport`]), which is what the serving layer amortizes its
//!   per-publication costs (coreness diff, HCD rebuild, epoch swap)
//!   over. The batch is currently applied update-by-update; sharing
//!   traversal work *within* a batch — as in Liu et al., *Parallel
//!   Batch-Dynamic Algorithms for k-Core Decomposition and Related
//!   Graph Problems* (SPAA 2022, see PAPERS.md), whose h-index-style
//!   batch peeling processes all affected subcores at once — is the
//!   natural next step and left as future work;
//! * on-demand HCD refresh: the hierarchy is rebuilt with PHCD only when
//!   queried after updates (true incremental hierarchy maintenance is
//!   the subject of \[15\] and left as future work, as in the paper).
//!
//! Every update path is property-tested against full recomputation.

pub mod graph;
pub mod maintain;

pub use graph::DynamicGraph;
pub use maintain::{BatchReport, DynamicCore, EdgeUpdate};
