//! Incremental core maintenance (traversal algorithm).

use hcd_core::Hcd;
use hcd_decomp::{core_decomposition, CoreDecomposition};
use hcd_graph::{CsrGraph, FxHashMap, FxHashSet, VertexId};
use hcd_par::Executor;

use crate::graph::DynamicGraph;

/// One edge update of a batch, applied by [`DynamicCore::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Insert the edge `{u, v}` (no-op for duplicates and self-loops).
    Insert(VertexId, VertexId),
    /// Remove the edge `{u, v}` (no-op if absent).
    Remove(VertexId, VertexId),
}

/// What a batch of updates did: how many edges actually changed, and
/// which vertices' coreness moved — the *changed region* a rebuild (or a
/// future truly-incremental hierarchy repair, see the crate docs on
/// batch-dynamic algorithms) needs to look at.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Stable 1-based sequence number of this batch: the Nth batch ever
    /// applied to this [`DynamicCore`] reports `seq == N`. Durability
    /// layers persist it with each write-ahead-log record so replay and
    /// differential oracles can cross-check exactly which batches were
    /// acknowledged before a crash.
    pub seq: u64,
    /// Updates that changed the edge set.
    pub applied: usize,
    /// Updates that were no-ops (duplicate inserts, self-loops, removals
    /// of absent edges).
    pub skipped: usize,
    /// Vertices whose coreness differs from before the batch, in
    /// ascending order. Empty for a batch that only touched edges
    /// between vertices whose coreness was unaffected.
    pub changed: Vec<VertexId>,
}

impl BatchReport {
    /// Whether the batch left every coreness value untouched.
    pub fn coreness_unchanged(&self) -> bool {
        self.changed.is_empty()
    }
}

/// A dynamic graph with incrementally maintained coreness and an
/// on-demand HCD.
///
/// Insertion and removal of an edge `{u, v}` change the coreness of a
/// vertex by at most one, and only for vertices of coreness
/// `c = min(c(u), c(v))` inside the *subcore* reachable from the edge
/// through same-coreness vertices (Sariyüce et al. 2013; Li, Yu & Mao
/// 2014). Each update therefore costs time proportional to that local
/// region instead of `O(m)`.
///
/// # Examples
///
/// ```
/// use hcd_dynamic::DynamicCore;
///
/// let mut dc = DynamicCore::new(4);
/// dc.insert_edge(0, 1);
/// dc.insert_edge(1, 2);
/// dc.insert_edge(2, 0); // triangle: everyone reaches coreness 2
/// assert_eq!(dc.coreness(0), 2);
/// dc.remove_edge(1, 2);
/// assert_eq!(dc.coreness(0), 1);
/// ```
pub struct DynamicCore {
    g: DynamicGraph,
    coreness: Vec<u32>,
    cache: Option<(CsrGraph, Hcd)>,
    /// Batches applied so far; stamps [`BatchReport::seq`].
    seq: u64,
}

impl DynamicCore {
    /// An edgeless dynamic graph with `n` vertices (all coreness 0).
    pub fn new(n: usize) -> Self {
        DynamicCore {
            g: DynamicGraph::new(n),
            coreness: vec![0; n],
            cache: None,
            seq: 0,
        }
    }

    /// Imports a static graph, computing its decomposition once.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let cores = core_decomposition(g);
        DynamicCore {
            g: DynamicGraph::from_csr(g),
            coreness: cores.as_slice().to_vec(),
            cache: None,
            seq: 0,
        }
    }

    /// The sequence number of the last applied batch (0 before any).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Overrides the batch sequence counter. Used by recovery: after
    /// reloading a checkpoint taken at batch `seq`, replayed WAL batches
    /// must continue the original numbering so cross-checks against
    /// pre-crash acknowledgements line up.
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// The underlying dynamic graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// Current coreness of `v`.
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.coreness[v as usize]
    }

    /// The full coreness array.
    pub fn coreness_slice(&self) -> &[u32] {
        &self.coreness
    }

    /// A [`CoreDecomposition`] snapshot of the current state.
    pub fn decomposition(&self) -> CoreDecomposition {
        CoreDecomposition::from_coreness(self.coreness.clone())
    }

    /// Inserts `{u, v}` and repairs coreness. Returns `false` (and leaves
    /// everything untouched) for duplicates and self-loops.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.g.insert_edge(u, v) {
            return false;
        }
        self.cache = None;
        if self.coreness.len() < self.g.num_vertices() {
            self.coreness.resize(self.g.num_vertices(), 0);
        }
        let c = self.coreness[u as usize].min(self.coreness[v as usize]);

        // Candidate subcore: coreness-c vertices reachable from the
        // endpoint(s) of coreness c through coreness-c vertices.
        let mut subcore: FxHashSet<VertexId> = FxHashSet::default();
        let mut stack: Vec<VertexId> = Vec::new();
        for r in [u, v] {
            if self.coreness[r as usize] == c && subcore.insert(r) {
                stack.push(r);
            }
        }
        while let Some(w) = stack.pop() {
            for x in self.g.neighbors(w) {
                if self.coreness[x as usize] == c && subcore.insert(x) {
                    stack.push(x);
                }
            }
        }

        // Peel: candidates needing >= c+1 supporters (neighbors of higher
        // coreness, or fellow survivors) keep their promotion.
        let mut cd: FxHashMap<VertexId, u32> = FxHashMap::default();
        for &w in &subcore {
            let count = self
                .g
                .neighbors(w)
                .filter(|&x| self.coreness[x as usize] > c || subcore.contains(&x))
                .count() as u32;
            cd.insert(w, count);
        }
        let mut queue: Vec<VertexId> = subcore.iter().copied().filter(|w| cd[w] <= c).collect();
        let mut evicted: FxHashSet<VertexId> = FxHashSet::default();
        while let Some(w) = queue.pop() {
            if !evicted.insert(w) {
                continue;
            }
            for x in self.g.neighbors(w) {
                if subcore.contains(&x) && !evicted.contains(&x) {
                    let e = cd.get_mut(&x).expect("cd computed for subcore");
                    *e -= 1;
                    if *e <= c {
                        queue.push(x);
                    }
                }
            }
        }
        for &w in &subcore {
            if !evicted.contains(&w) {
                self.coreness[w as usize] = c + 1;
            }
        }
        true
    }

    /// Removes `{u, v}` and repairs coreness. Returns `false` if the edge
    /// was absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.g.remove_edge(u, v) {
            return false;
        }
        self.cache = None;
        let c = self.coreness[u as usize].min(self.coreness[v as usize]);
        if c == 0 {
            return true; // coreness-0 vertices cannot drop further
        }

        // Cascade demotions among coreness-c vertices whose support
        // (neighbors of coreness >= c) fell below c. `cd` is computed
        // lazily from the *current* state so later demotions see earlier
        // ones.
        let mut cd: FxHashMap<VertexId, u32> = FxHashMap::default();
        let mut queue: Vec<VertexId> = Vec::new();
        for r in [u, v] {
            if self.coreness[r as usize] == c {
                let count = self.support(r, c);
                cd.insert(r, count);
                if count < c {
                    queue.push(r);
                }
            }
        }
        while let Some(w) = queue.pop() {
            if self.coreness[w as usize] != c {
                continue; // already demoted
            }
            self.coreness[w as usize] = c - 1;
            let neighbors: Vec<VertexId> = self.g.neighbors(w).collect();
            for x in neighbors {
                if self.coreness[x as usize] != c {
                    continue;
                }
                let entry = match cd.get_mut(&x) {
                    Some(e) => {
                        // w was counted when x's support was computed
                        // (w still had coreness c then).
                        *e -= 1;
                        *e
                    }
                    None => {
                        let count = self.support(x, c);
                        cd.insert(x, count);
                        count
                    }
                };
                if entry < c {
                    queue.push(x);
                }
            }
        }
        true
    }

    /// Applies a whole batch of edge updates in order and reports the
    /// changed region.
    ///
    /// Each update runs the same subcore-local repair as
    /// [`DynamicCore::insert_edge`] / [`DynamicCore::remove_edge`], so
    /// the batch result is identical to applying the updates one by one
    /// — batching buys the *caller* something: one coreness diff, one
    /// HCD rebuild, and one snapshot publication per batch instead of
    /// per edge (the serving layer's epoch swap). Truly batch-internal
    /// sharing of traversal work is the subject of parallel
    /// batch-dynamic k-core algorithms (Liu et al.; see the crate docs)
    /// and is deliberately left as future work.
    ///
    /// The report's `changed` set is computed as a before/after diff of
    /// the coreness array, so it is exact: a vertex appears iff its
    /// coreness after the batch differs from its coreness before
    /// (intermediate flips that cancel out within the batch do not
    /// appear).
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> BatchReport {
        let before = self.coreness.clone();
        self.seq += 1;
        let mut report = BatchReport {
            seq: self.seq,
            ..BatchReport::default()
        };
        for &u in updates {
            let applied = match u {
                EdgeUpdate::Insert(a, b) => self.insert_edge(a, b),
                EdgeUpdate::Remove(a, b) => self.remove_edge(a, b),
            };
            if applied {
                report.applied += 1;
            } else {
                report.skipped += 1;
            }
        }
        // Vertices added by the batch start from implicit coreness 0.
        for v in 0..self.coreness.len() {
            let old = before.get(v).copied().unwrap_or(0);
            if self.coreness[v] != old {
                report.changed.push(v as VertexId);
            }
        }
        report
    }

    /// Number of `w`'s neighbors with coreness `>= c`.
    fn support(&self, w: VertexId, c: u32) -> u32 {
        self.g
            .neighbors(w)
            .filter(|&x| self.coreness[x as usize] >= c)
            .count() as u32
    }

    /// The HCD of the current graph, rebuilt (with PHCD on a CSR
    /// snapshot) only when updates occurred since the last call.
    /// Returns `(graph snapshot, hierarchy)`.
    pub fn hcd(&mut self, exec: &Executor) -> &(CsrGraph, Hcd) {
        if self.cache.is_none() {
            let snapshot = self.g.to_csr();
            let cores = CoreDecomposition::from_coreness(self.coreness.clone());
            let hcd = hcd_core::phcd(&snapshot, &cores, exec);
            self.cache = Some((snapshot, hcd));
        }
        self.cache.as_ref().expect("just filled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matches_recompute(dc: &DynamicCore) {
        let snapshot = dc.graph().to_csr();
        let expect = core_decomposition(&snapshot);
        assert_eq!(
            dc.coreness_slice(),
            expect.as_slice(),
            "incremental coreness diverged from recomputation"
        );
    }

    #[test]
    fn triangle_up_and_down() {
        let mut dc = DynamicCore::new(3);
        dc.insert_edge(0, 1);
        assert_matches_recompute(&dc);
        dc.insert_edge(1, 2);
        assert_matches_recompute(&dc);
        dc.insert_edge(2, 0);
        assert_eq!(dc.coreness_slice(), &[2, 2, 2]);
        dc.remove_edge(0, 1);
        assert_eq!(dc.coreness_slice(), &[1, 1, 1]);
        assert_matches_recompute(&dc);
    }

    #[test]
    fn growing_a_clique_promotes_stepwise() {
        let mut dc = DynamicCore::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                dc.insert_edge(u, v);
                assert_matches_recompute(&dc);
            }
        }
        assert!(dc.coreness_slice().iter().all(|&c| c == 4));
    }

    #[test]
    fn dismantling_a_clique_demotes_stepwise() {
        let mut b = hcd_graph::GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        let mut dc = DynamicCore::from_csr(&b.build());
        let edges: Vec<(u32, u32)> = dc.graph().to_csr().edges().collect();
        for (u, v) in edges {
            dc.remove_edge(u, v);
            assert_matches_recompute(&dc);
        }
        assert!(dc.coreness_slice().iter().all(|&c| c == 0));
    }

    #[test]
    fn insertion_between_different_coreness_regions() {
        // Triangle (coreness 2) + path (coreness 1); bridging them must
        // not promote anyone.
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (3, 4)])
            .build();
        let mut dc = DynamicCore::from_csr(&g);
        dc.insert_edge(0, 3);
        assert_matches_recompute(&dc);
        assert_eq!(dc.coreness(3), 1);
        assert_eq!(dc.coreness(0), 2);
    }

    #[test]
    fn duplicate_and_selfloop_are_noops() {
        let mut dc = DynamicCore::new(3);
        dc.insert_edge(0, 1);
        let before = dc.coreness_slice().to_vec();
        assert!(!dc.insert_edge(0, 1));
        assert!(!dc.insert_edge(2, 2));
        assert!(!dc.remove_edge(0, 2));
        assert_eq!(dc.coreness_slice(), before.as_slice());
    }

    #[test]
    fn hcd_cache_refreshes_after_updates() {
        let mut dc = DynamicCore::new(0);
        dc.insert_edge(0, 1);
        dc.insert_edge(1, 2);
        dc.insert_edge(2, 0);
        let exec = Executor::sequential();
        {
            let (_, hcd) = dc.hcd(&exec);
            assert_eq!(hcd.num_nodes(), 1);
            assert_eq!(hcd.node(0).k, 2);
        }
        dc.insert_edge(2, 3);
        let cores = dc.decomposition();
        let (snapshot, hcd) = dc.hcd(&exec);
        assert_eq!(snapshot.num_edges(), 4);
        assert_eq!(hcd.num_nodes(), 2);
        // The refreshed hierarchy matches a from-scratch construction.
        let fresh = hcd_core::naive_hcd(snapshot, &cores);
        assert_eq!(hcd.canonicalize(), fresh.canonicalize());
    }

    #[test]
    fn grows_vertex_set_on_insert() {
        let mut dc = DynamicCore::new(0);
        dc.insert_edge(7, 3);
        assert_eq!(dc.coreness(7), 1);
        assert_eq!(dc.coreness(0), 0);
        assert_matches_recompute(&dc);
    }

    #[test]
    fn batch_equals_singles_and_reports_exact_changed_region() {
        // Triangle {0,1,2} + path 2-3-4. The batch completes K4 on
        // {0,1,2,3} (promoting all four to coreness 3) and strips the
        // pendant edge (demoting 4 to 0).
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
            .build();
        let mut batch = DynamicCore::from_csr(&g);
        let mut singles = DynamicCore::from_csr(&g);
        let updates = [
            EdgeUpdate::Insert(1, 3),
            EdgeUpdate::Insert(0, 3),
            EdgeUpdate::Remove(3, 4),
        ];
        let before = batch.coreness_slice().to_vec();
        let report = batch.apply_batch(&updates);
        singles.insert_edge(1, 3);
        singles.insert_edge(0, 3);
        singles.remove_edge(3, 4);
        assert_eq!(batch.coreness_slice(), singles.coreness_slice());
        assert_eq!(report.applied, 3);
        assert_eq!(report.skipped, 0);
        // 0,1,2: 2→3; 3: 1→3; 4: 1→0 — every vertex moved.
        assert_eq!(batch.coreness_slice(), &[3, 3, 3, 3, 0]);
        assert_ne!(batch.coreness_slice(), before.as_slice());
        assert_eq!(report.changed, vec![0, 1, 2, 3, 4]);
        assert_matches_recompute(&batch);
    }

    #[test]
    fn batch_counts_duplicate_inserts_and_missing_removals_as_skipped() {
        let mut dc = DynamicCore::new(3);
        dc.insert_edge(0, 1);
        let report = dc.apply_batch(&[
            EdgeUpdate::Insert(0, 1), // duplicate
            EdgeUpdate::Insert(1, 1), // self-loop
            EdgeUpdate::Remove(0, 2), // absent
            EdgeUpdate::Insert(1, 2), // real
        ]);
        assert_eq!(report.applied, 1);
        assert_eq!(report.skipped, 3);
        assert_eq!(report.changed, vec![2]); // 2 went 0 -> 1
        assert_matches_recompute(&dc);
    }

    #[test]
    fn batch_with_cancelling_updates_reports_no_change() {
        let mut dc = DynamicCore::new(4);
        dc.insert_edge(0, 1);
        dc.insert_edge(1, 2);
        let report = dc.apply_batch(&[
            EdgeUpdate::Insert(2, 3),
            EdgeUpdate::Remove(2, 3), // cancels within the batch
        ]);
        assert_eq!(report.applied, 2);
        assert!(report.coreness_unchanged(), "{report:?}");
        assert_matches_recompute(&dc);
    }

    #[test]
    fn empty_batch_is_a_noop_but_still_numbered() {
        let mut dc = DynamicCore::new(2);
        dc.insert_edge(0, 1);
        let report = dc.apply_batch(&[]);
        assert_eq!(
            report,
            BatchReport {
                seq: 1,
                ..BatchReport::default()
            }
        );
    }

    #[test]
    fn batch_sequence_numbers_are_monotone_and_restorable() {
        let mut dc = DynamicCore::new(4);
        assert_eq!(dc.seq(), 0);
        assert_eq!(dc.apply_batch(&[EdgeUpdate::Insert(0, 1)]).seq, 1);
        assert_eq!(dc.apply_batch(&[EdgeUpdate::Insert(1, 2)]).seq, 2);
        assert_eq!(dc.seq(), 2);
        // Recovery resumes numbering from the checkpoint's sequence.
        let mut recovered = DynamicCore::from_csr(&dc.graph().to_csr());
        recovered.set_seq(2);
        assert_eq!(recovered.apply_batch(&[EdgeUpdate::Insert(2, 3)]).seq, 3);
    }

    #[test]
    fn batch_splitting_a_component_demotes_both_halves() {
        // Two triangles joined by a bridge; removing the bridge splits
        // the component but coreness (2 in each triangle) is unaffected,
        // while dismantling one triangle demotes only that half.
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build();
        let mut dc = DynamicCore::from_csr(&g);
        let split = dc.apply_batch(&[EdgeUpdate::Remove(2, 3)]);
        assert!(split.coreness_unchanged(), "{split:?}");
        assert_matches_recompute(&dc);
        let dismantle = dc.apply_batch(&[EdgeUpdate::Remove(3, 4)]);
        assert_eq!(dismantle.changed, vec![3, 4, 5]);
        assert_matches_recompute(&dc);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32, u32),
        Remove(u32, u32),
    }

    fn arb_ops(max_n: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            (any::<bool>(), 0..max_n, 0..max_n).prop_map(|(ins, a, b)| {
                if ins {
                    Op::Insert(a, b)
                } else {
                    Op::Remove(a, b)
                }
            }),
            1..len,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_update_sequences_match_recomputation(ops in arb_ops(16, 120)) {
            let mut dc = DynamicCore::new(16);
            for op in ops {
                match op {
                    Op::Insert(a, b) => {
                        dc.insert_edge(a, b);
                    }
                    Op::Remove(a, b) => {
                        dc.remove_edge(a, b);
                    }
                }
                let snapshot = dc.graph().to_csr();
                let expect = core_decomposition(&snapshot);
                prop_assert_eq!(dc.coreness_slice(), expect.as_slice());
            }
        }

        #[test]
        fn insert_then_remove_is_identity(edges in prop::collection::vec((0..14u32, 0..14u32), 1..60), extra in (0..14u32, 0..14u32)) {
            let mut dc = DynamicCore::new(14);
            for (a, b) in edges {
                dc.insert_edge(a, b);
            }
            let before = dc.coreness_slice().to_vec();
            let (a, b) = extra;
            if dc.insert_edge(a, b) {
                dc.remove_edge(a, b);
            }
            prop_assert_eq!(dc.coreness_slice(), before.as_slice());
        }

        #[test]
        fn duplicate_insert_in_a_batch_changes_nothing(edges in prop::collection::vec((0..12u32, 0..12u32), 1..40)) {
            // Re-inserting every existing edge (and removing every absent
            // pair) must be a pure no-op with an all-skipped report.
            let mut dc = DynamicCore::new(12);
            for &(a, b) in &edges {
                dc.insert_edge(a, b);
            }
            let before = dc.coreness_slice().to_vec();
            let mut noops = Vec::new();
            for u in 0..12u32 {
                for v in u..12u32 {
                    if dc.graph().has_edge(u, v) {
                        noops.push(EdgeUpdate::Insert(u, v));
                    } else {
                        noops.push(EdgeUpdate::Remove(u, v));
                    }
                }
            }
            let report = dc.apply_batch(&noops);
            prop_assert_eq!(report.applied, 0);
            prop_assert_eq!(report.skipped, noops.len());
            prop_assert!(report.coreness_unchanged());
            prop_assert_eq!(dc.coreness_slice(), before.as_slice());
        }

        #[test]
        fn batch_matches_recomputation_and_single_edge_application(
            edges in prop::collection::vec((0..14u32, 0..14u32), 1..50),
            ops in arb_ops(14, 60),
        ) {
            let mut batched = DynamicCore::new(14);
            for &(a, b) in &edges {
                batched.insert_edge(a, b);
            }
            let mut singles = batched.graph().clone();
            let before = batched.coreness_slice().to_vec();
            let updates: Vec<EdgeUpdate> = ops
                .iter()
                .map(|op| match *op {
                    Op::Insert(a, b) => EdgeUpdate::Insert(a, b),
                    Op::Remove(a, b) => EdgeUpdate::Remove(a, b),
                })
                .collect();
            let report = batched.apply_batch(&updates);
            // Edge-set agreement with plain graph updates.
            for u in &updates {
                match *u {
                    EdgeUpdate::Insert(a, b) => { singles.insert_edge(a, b); }
                    EdgeUpdate::Remove(a, b) => { singles.remove_edge(a, b); }
                }
            }
            prop_assert_eq!(batched.graph().to_csr(), singles.to_csr());
            // Coreness agreement with from-scratch decomposition.
            let expect = core_decomposition(&batched.graph().to_csr());
            prop_assert_eq!(batched.coreness_slice(), expect.as_slice());
            // The changed-region report is the exact before/after diff.
            let diff: Vec<VertexId> = (0..batched.coreness_slice().len())
                .filter(|&v| batched.coreness_slice()[v] != before.get(v).copied().unwrap_or(0))
                .map(|v| v as VertexId)
                .collect();
            prop_assert_eq!(report.changed, diff);
        }

        #[test]
        fn component_splits_and_merges_match_recomputation(
            bridge in (0..6u32, 6..12u32),
            left in prop::collection::vec((0..6u32, 0..6u32), 4..16),
            right in prop::collection::vec((6..12u32, 6..12u32), 4..16),
        ) {
            // Two islands joined by one bridge; removing and re-adding the
            // bridge splits and merges the connected component.
            let mut dc = DynamicCore::new(12);
            for &(a, b) in left.iter().chain(right.iter()) {
                dc.insert_edge(a, b);
            }
            let (u, v) = bridge;
            dc.insert_edge(u, v);
            let joined = dc.coreness_slice().to_vec();
            dc.apply_batch(&[EdgeUpdate::Remove(u, v)]);
            let expect_split = core_decomposition(&dc.graph().to_csr());
            prop_assert_eq!(dc.coreness_slice(), expect_split.as_slice());
            let merge = dc.apply_batch(&[EdgeUpdate::Insert(u, v)]);
            prop_assert_eq!(dc.coreness_slice(), joined.as_slice());
            let expect_merged = core_decomposition(&dc.graph().to_csr());
            prop_assert_eq!(dc.coreness_slice(), expect_merged.as_slice());
            // Split + merge round-trips the report too: the merge must
            // undo exactly what the split changed.
            prop_assert!(merge.applied == 1);
        }

        #[test]
        fn insert_remove_insert_converges_to_scratch(
            edges in prop::collection::vec((0..12u32, 0..12u32), 1..40),
            churn in prop::collection::vec((0..12u32, 0..12u32), 1..12),
        ) {
            let mut dc = DynamicCore::new(12);
            for &(a, b) in &edges {
                dc.insert_edge(a, b);
            }
            // insert → remove → insert each churn pair: the edge ends up
            // present, and coreness must equal a fresh decomposition.
            let updates: Vec<EdgeUpdate> = churn
                .iter()
                .flat_map(|&(a, b)| {
                    [
                        EdgeUpdate::Insert(a, b),
                        EdgeUpdate::Remove(a, b),
                        EdgeUpdate::Insert(a, b),
                    ]
                })
                .collect();
            dc.apply_batch(&updates);
            for &(a, b) in &churn {
                if a != b {
                    prop_assert!(dc.graph().has_edge(a, b));
                }
            }
            let expect = core_decomposition(&dc.graph().to_csr());
            prop_assert_eq!(dc.coreness_slice(), expect.as_slice());
        }
    }
}
