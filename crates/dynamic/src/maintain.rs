//! Incremental core maintenance (parallel batch-dynamic algorithm).

use hcd_core::Hcd;
use hcd_decomp::{core_decomposition, CoreDecomposition};
use hcd_graph::{CsrGraph, FxHashMap, FxHashSet, VertexId};
use hcd_par::{Executor, ParError};

use crate::graph::DynamicGraph;

/// One edge update of a batch, applied by [`DynamicCore::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Insert the edge `{u, v}` (no-op for duplicates and self-loops).
    Insert(VertexId, VertexId),
    /// Remove the edge `{u, v}` (no-op if absent).
    Remove(VertexId, VertexId),
}

/// What a batch of updates did: how many edges actually changed, which
/// endpoints they touched, and which vertices' coreness moved — the
/// *changed region* a hierarchy repair needs to look at.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Stable 1-based sequence number of this batch: the Nth batch ever
    /// applied to this [`DynamicCore`] reports `seq == N`. Durability
    /// layers persist it with each write-ahead-log record so replay and
    /// differential oracles can cross-check exactly which batches were
    /// acknowledged before a crash.
    pub seq: u64,
    /// Updates that changed the edge set.
    pub applied: usize,
    /// Updates that were no-ops (duplicate inserts, self-loops, removals
    /// of absent edges).
    pub skipped: usize,
    /// Vertices whose coreness differs from before the batch, in
    /// ascending order. Empty for a batch that only touched edges
    /// between vertices whose coreness was unaffected.
    pub changed: Vec<VertexId>,
    /// Endpoints of the applied (edge-set-changing) updates, deduplicated
    /// and ascending. Together with `changed` this is the exact dirty
    /// seed set for surgical hierarchy repair: connectivity can only
    /// change across these edges even when no coreness moves.
    pub touched: Vec<VertexId>,
}

impl BatchReport {
    /// Whether the batch left every coreness value untouched.
    pub fn coreness_unchanged(&self) -> bool {
        self.changed.is_empty()
    }
}

/// Bookkeeping the batch engine hands back to the caller.
struct EngineOutcome {
    /// Pre-batch coreness of every vertex whose value moved at some
    /// point (including moves that later cancelled out).
    old_values: FxHashMap<VertexId, u32>,
    /// Distinct vertices examined by the peel/promote phases.
    affected: u64,
    /// Adjacency-list entries scanned across all phases.
    traversed: u64,
}

/// A dynamic graph with incrementally maintained coreness and an
/// on-demand HCD.
///
/// Updates are maintained with the parallel batch-dynamic scheme of Liu,
/// Shi, Yu & Dhulipala (SPAA 2022): after mutating the edge set, a
/// *peel* phase runs an h-index fixpoint seeded at the update endpoints
/// (handling all coreness decreases of the whole batch at once), then
/// round-based *promote* phases raise values level by level until the
/// exact new coreness is reached. Both phases run through [`Executor`]
/// regions (`dynamic.peel`, `dynamic.promote`) so cancellation,
/// deadlines, fault injection and metrics govern them, and their cost is
/// proportional to the affected region, not the graph.
///
/// # Examples
///
/// ```
/// use hcd_dynamic::DynamicCore;
///
/// let mut dc = DynamicCore::new(4);
/// dc.insert_edge(0, 1);
/// dc.insert_edge(1, 2);
/// dc.insert_edge(2, 0); // triangle: everyone reaches coreness 2
/// assert_eq!(dc.coreness(0), 2);
/// dc.remove_edge(1, 2);
/// assert_eq!(dc.coreness(0), 1);
/// ```
pub struct DynamicCore {
    g: DynamicGraph,
    coreness: Vec<u32>,
    cache: Option<(CsrGraph, Hcd)>,
    /// Batches applied so far; stamps [`BatchReport::seq`].
    seq: u64,
}

impl DynamicCore {
    /// An edgeless dynamic graph with `n` vertices (all coreness 0).
    pub fn new(n: usize) -> Self {
        DynamicCore {
            g: DynamicGraph::new(n),
            coreness: vec![0; n],
            cache: None,
            seq: 0,
        }
    }

    /// Imports a static graph, computing its decomposition once.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let cores = core_decomposition(g);
        DynamicCore {
            g: DynamicGraph::from_csr(g),
            coreness: cores.as_slice().to_vec(),
            cache: None,
            seq: 0,
        }
    }

    /// The sequence number of the last applied batch (0 before any).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Overrides the batch sequence counter. Used by recovery: after
    /// reloading a checkpoint taken at batch `seq`, replayed WAL batches
    /// must continue the original numbering so cross-checks against
    /// pre-crash acknowledgements line up.
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// The underlying dynamic graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// Current coreness of `v`.
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.coreness[v as usize]
    }

    /// The full coreness array.
    pub fn coreness_slice(&self) -> &[u32] {
        &self.coreness
    }

    /// A [`CoreDecomposition`] snapshot of the current state.
    pub fn decomposition(&self) -> CoreDecomposition {
        CoreDecomposition::from_coreness(self.coreness.clone())
    }

    /// Whether every update in `batch` would be a no-op against the
    /// current edge set: duplicate inserts, self-loops, and removals of
    /// absent edges. Because a no-op update leaves the graph untouched,
    /// checking each update against the *unmutated* graph is exact.
    pub fn batch_is_noop(&self, updates: &[EdgeUpdate]) -> bool {
        let n = self.g.num_vertices() as u64;
        updates.iter().all(|&u| match u {
            EdgeUpdate::Insert(a, b) => {
                a == b || ((a as u64) < n && (b as u64) < n && self.g.has_edge(a, b))
            }
            EdgeUpdate::Remove(a, b) => {
                (a as u64) >= n || (b as u64) >= n || !self.g.has_edge(a, b)
            }
        })
    }

    /// Inserts `{u, v}` and repairs coreness. Returns `false` (and leaves
    /// everything untouched) for duplicates and self-loops. Does not
    /// advance the batch sequence number.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.single_update(EdgeUpdate::Insert(u, v))
    }

    /// Removes `{u, v}` and repairs coreness. Returns `false` if the edge
    /// was absent. Does not advance the batch sequence number.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.single_update(EdgeUpdate::Remove(u, v))
    }

    fn single_update(&mut self, update: EdgeUpdate) -> bool {
        let seq = self.seq;
        let report = self.apply_batch(std::slice::from_ref(&update));
        self.seq = seq;
        report.applied == 1
    }

    /// Applies a whole batch of edge updates and reports the changed
    /// region. Infallible form of [`DynamicCore::try_apply_batch`] on a
    /// private sequential executor (which has no failure modes: no
    /// deadline, no cancellation token, no fault plan).
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> BatchReport {
        match self.try_apply_batch(updates, &Executor::sequential()) {
            Ok(report) => report,
            // A fresh sequential executor cannot cancel, time out, or
            // inject faults, and the engine body does not panic.
            Err(e) => unreachable!("sequential batch maintenance failed: {e}"),
        }
    }

    /// Applies a whole batch of edge updates with the SPAA'22-style
    /// batch-dynamic algorithm and reports the changed region.
    ///
    /// Phases, each costing time proportional to the affected region:
    ///
    /// 1. **mutate** — every update is applied to the edge set (order
    ///    matters only for classifying duplicates within the batch);
    ///    endpoints of applied updates seed the repair.
    /// 2. **peel** (`dynamic.peel` region, one invocation) — an h-index
    ///    worklist fixpoint lowers coreness values: starting from the
    ///    pre-batch values, `L(v) ← min(L(v), H({L(w) : w ∈ N(v)}))`
    ///    until stable. At the fixpoint `L(v) ≤ H` for every vertex, so
    ///    each level set `{L ≥ k}` has min internal degree `≥ k` — `L`
    ///    is a sound lower bound of the new coreness, exact for the
    ///    graph with only the removals applied.
    /// 3. **promote** (`dynamic.promote` region per round) — candidates
    ///    are gathered by traversal from the seeds through equal-value
    ///    vertices; per level `k` the maximal set whose members keep
    ///    `≥ k+1` supporters (neighbors of larger value or surviving
    ///    co-candidates) is promoted one level. Rounds repeat with the
    ///    promoted vertices (and their neighbors) as new seeds until no
    ///    promotion happens, which reaches the exact new coreness.
    ///
    /// Counters `dynamic.affected_vertices` and
    /// `dynamic.traversal_edges` report the size of the region the
    /// repair actually looked at.
    ///
    /// On `Err` (cancellation, deadline, injected fault) the graph
    /// mutation is kept — the batch was already logged by durable
    /// callers — and coreness is restored to the exact decomposition of
    /// the mutated graph with a sequential recomputation, so the writer
    /// state never diverges from its log. The sequence number advances
    /// on every call, succeed or fail, matching WAL record numbering.
    pub fn try_apply_batch(
        &mut self,
        updates: &[EdgeUpdate],
        exec: &Executor,
    ) -> Result<BatchReport, ParError> {
        self.seq += 1;
        let mut report = BatchReport {
            seq: self.seq,
            ..BatchReport::default()
        };
        let mut seed_set: FxHashSet<VertexId> = FxHashSet::default();
        for &u in updates {
            let (a, b, applied) = match u {
                EdgeUpdate::Insert(a, b) => (a, b, self.g.insert_edge(a, b)),
                EdgeUpdate::Remove(a, b) => (a, b, self.g.remove_edge(a, b)),
            };
            if applied {
                report.applied += 1;
                seed_set.insert(a);
                seed_set.insert(b);
            } else {
                report.skipped += 1;
            }
        }
        if report.applied == 0 {
            // The edge set is untouched: nothing to repair, no regions
            // to open (so no-op batches cost no parallel machinery).
            return Ok(report);
        }
        self.cache = None;
        if self.coreness.len() < self.g.num_vertices() {
            self.coreness.resize(self.g.num_vertices(), 0);
        }
        let mut seeds: Vec<VertexId> = seed_set.iter().copied().collect();
        seeds.sort_unstable();
        report.touched = seeds.clone();

        match run_batch_engine(&self.g, &mut self.coreness, &seeds, exec) {
            Ok(outcome) => {
                exec.add_counter("dynamic.affected_vertices", outcome.affected);
                exec.add_counter("dynamic.traversal_edges", outcome.traversed);
                let mut changed: Vec<VertexId> = outcome
                    .old_values
                    .iter()
                    .filter(|&(&v, &old)| self.coreness[v as usize] != old)
                    .map(|(&v, _)| v)
                    .collect();
                changed.sort_unstable();
                report.changed = changed;
                Ok(report)
            }
            Err(e) => {
                // The fixpoint was abandoned mid-flight; values may be
                // torn. Restore the exact-coreness invariant so memory
                // stays consistent with the (kept) graph mutation and
                // the durable log.
                let exact = core_decomposition(&self.g.to_csr());
                self.coreness = exact.as_slice().to_vec();
                Err(e)
            }
        }
    }

    /// The HCD of the current graph, rebuilt (with PHCD on a CSR
    /// snapshot) only when updates occurred since the last call.
    /// Returns `(graph snapshot, hierarchy)`.
    pub fn hcd(&mut self, exec: &Executor) -> &(CsrGraph, Hcd) {
        if self.cache.is_none() {
            let snapshot = self.g.to_csr();
            let cores = CoreDecomposition::from_coreness(self.coreness.clone());
            let hcd = hcd_core::phcd(&snapshot, &cores, exec);
            self.cache = Some((snapshot, hcd));
        }
        self.cache.as_ref().expect("just filled")
    }
}

/// The capped h-index bound: the largest `t <= vals[v]` such that at
/// least `t` neighbors of `v` have value `>= t`. Returns the bound and
/// the number of adjacency entries scanned.
fn h_bound(g: &DynamicGraph, vals: &[u32], v: VertexId) -> (u32, u64) {
    let cap = vals[v as usize];
    let deg = g.degree(v) as u64;
    if cap == 0 {
        return (0, deg);
    }
    let mut cnt = vec![0u32; cap as usize + 1];
    for x in g.neighbors(v) {
        cnt[vals[x as usize].min(cap) as usize] += 1;
    }
    let mut at_least = 0u32;
    for t in (1..=cap).rev() {
        at_least += cnt[t as usize];
        if at_least >= t {
            return (t, deg);
        }
    }
    (0, deg)
}

/// Peel + promote over the already-mutated graph. `coreness` holds the
/// pre-batch values on entry and the exact post-batch values on `Ok`;
/// on `Err` it may be torn (the caller recomputes).
fn run_batch_engine(
    g: &DynamicGraph,
    coreness: &mut [u32],
    seeds: &[VertexId],
    exec: &Executor,
) -> Result<EngineOutcome, ParError> {
    let mut old_values: FxHashMap<VertexId, u32> = FxHashMap::default();
    let mut affected: FxHashSet<VertexId> = seeds.iter().copied().collect();
    let mut traversed: u64 = 0;

    // --- peel: one parallel scan over the seeds, then the worklist ----
    // The region computes the first h-index bound for every seed
    // (read-only); the drops it finds seed the sequential cascade, whose
    // cost is bounded by the region that actually shrinks.
    let initial: Vec<(Vec<(VertexId, u32)>, u64)> = {
        let vals: &[u32] = coreness;
        exec.region("dynamic.peel")
            .try_map_chunks(seeds.len(), |_, range| {
                let mut drops: Vec<(VertexId, u32)> = Vec::new();
                let mut edges = 0u64;
                for i in range {
                    let v = seeds[i];
                    let (h, deg) = h_bound(g, vals, v);
                    edges += deg;
                    if h < vals[v as usize] {
                        drops.push((v, h));
                    }
                }
                Ok((drops, edges))
            })?
    };
    let mut work: Vec<VertexId> = Vec::new();
    let mut queued: FxHashSet<VertexId> = FxHashSet::default();
    let lower = |v: VertexId,
                 h: u32,
                 coreness: &mut [u32],
                 work: &mut Vec<VertexId>,
                 queued: &mut FxHashSet<VertexId>,
                 old_values: &mut FxHashMap<VertexId, u32>,
                 affected: &mut FxHashSet<VertexId>,
                 traversed: &mut u64| {
        let old = coreness[v as usize];
        old_values.entry(v).or_insert(old);
        coreness[v as usize] = h;
        for x in g.neighbors(v) {
            *traversed += 1;
            // Only neighbors that may have counted v above its new value
            // can see their bound drop.
            let xv = coreness[x as usize];
            if h < xv && xv <= old && queued.insert(x) {
                affected.insert(x);
                work.push(x);
            }
        }
    };
    for (drops, edges) in initial {
        traversed += edges;
        for (v, h) in drops {
            if h < coreness[v as usize] {
                lower(
                    v,
                    h,
                    coreness,
                    &mut work,
                    &mut queued,
                    &mut old_values,
                    &mut affected,
                    &mut traversed,
                );
            }
        }
    }
    while let Some(v) = work.pop() {
        queued.remove(&v);
        let (h, deg) = h_bound(g, coreness, v);
        traversed += deg;
        if h < coreness[v as usize] {
            lower(
                v,
                h,
                coreness,
                &mut work,
                &mut queued,
                &mut old_values,
                &mut affected,
                &mut traversed,
            );
        }
    }

    // --- promote: rounds of gather → parallel support → evict → raise --
    // Round-1 seeds: the update endpoints, everything the peel touched,
    // and their neighbors (generous seeding is always sound; see the
    // module tests for the completeness argument).
    let mut round_seeds: Vec<VertexId> = Vec::new();
    {
        let mut seen: FxHashSet<VertexId> = FxHashSet::default();
        let base: Vec<VertexId> = seeds
            .iter()
            .copied()
            .chain(old_values.keys().copied())
            .collect();
        for v in base {
            if seen.insert(v) {
                round_seeds.push(v);
            }
            for x in g.neighbors(v) {
                traversed += 1;
                if seen.insert(x) {
                    round_seeds.push(x);
                }
            }
        }
    }
    loop {
        // Gather candidate groups: traversal from each seed through
        // vertices of the seed's current value.
        let mut cand: Vec<VertexId> = Vec::new();
        let mut cand_pos: FxHashMap<VertexId, u32> = FxHashMap::default();
        let mut stack: Vec<VertexId> = Vec::new();
        for &s in &round_seeds {
            if cand_pos.contains_key(&s) {
                continue;
            }
            cand_pos.insert(s, cand.len() as u32);
            cand.push(s);
            stack.push(s);
            while let Some(w) = stack.pop() {
                let k = coreness[w as usize];
                for x in g.neighbors(w) {
                    traversed += 1;
                    if coreness[x as usize] == k && !cand_pos.contains_key(&x) {
                        cand_pos.insert(x, cand.len() as u32);
                        cand.push(x);
                        stack.push(x);
                    }
                }
            }
        }
        affected.extend(cand.iter().copied());

        // Parallel support counts (read-only), then the sequential
        // eviction cascade. A candidate at level k needs >= k+1
        // supporters: neighbors of strictly larger value, or surviving
        // co-candidates of the same level.
        let mut sup = vec![0u32; cand.len()];
        {
            let vals: &[u32] = coreness;
            let cand_ref = &cand;
            let pos_ref = &cand_pos;
            let chunks: Vec<(Vec<(u32, u32)>, u64)> = exec
                .region("dynamic.promote")
                .try_map_chunks(cand_ref.len(), |_, range| {
                    let mut out = Vec::with_capacity(range.len());
                    let mut edges = 0u64;
                    for i in range {
                        let v = cand_ref[i];
                        let k = vals[v as usize];
                        let mut s = 0u32;
                        for x in g.neighbors(v) {
                            edges += 1;
                            let xv = vals[x as usize];
                            if xv > k || (xv == k && pos_ref.contains_key(&x)) {
                                s += 1;
                            }
                        }
                        out.push((i as u32, s));
                    }
                    Ok((out, edges))
                })?;
            for (pairs, edges) in chunks {
                traversed += edges;
                for (i, s) in pairs {
                    sup[i as usize] = s;
                }
            }
        }
        let mut evicted = vec![false; cand.len()];
        let mut queue: Vec<u32> = (0..cand.len() as u32)
            .filter(|&i| sup[i as usize] <= coreness[cand[i as usize] as usize])
            .collect();
        while let Some(i) = queue.pop() {
            if evicted[i as usize] {
                continue;
            }
            evicted[i as usize] = true;
            let v = cand[i as usize];
            let k = coreness[v as usize];
            for x in g.neighbors(v) {
                traversed += 1;
                if coreness[x as usize] != k {
                    continue;
                }
                if let Some(&j) = cand_pos.get(&x) {
                    if !evicted[j as usize] {
                        sup[j as usize] -= 1;
                        if sup[j as usize] <= k {
                            queue.push(j);
                        }
                    }
                }
            }
        }
        let promoted: Vec<VertexId> = (0..cand.len())
            .filter(|&i| !evicted[i])
            .map(|i| cand[i])
            .collect();
        if promoted.is_empty() {
            break;
        }
        for &v in &promoted {
            old_values.entry(v).or_insert(coreness[v as usize]);
            coreness[v as usize] += 1;
        }
        round_seeds.clear();
        let mut seen: FxHashSet<VertexId> = FxHashSet::default();
        for &v in &promoted {
            if seen.insert(v) {
                round_seeds.push(v);
            }
            for x in g.neighbors(v) {
                traversed += 1;
                if seen.insert(x) {
                    round_seeds.push(x);
                }
            }
        }
    }

    affected.extend(old_values.keys().copied());
    Ok(EngineOutcome {
        affected: affected.len() as u64,
        traversed,
        old_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matches_recompute(dc: &DynamicCore) {
        let snapshot = dc.graph().to_csr();
        let expect = core_decomposition(&snapshot);
        assert_eq!(
            dc.coreness_slice(),
            expect.as_slice(),
            "incremental coreness diverged from recomputation"
        );
    }

    #[test]
    fn triangle_up_and_down() {
        let mut dc = DynamicCore::new(3);
        dc.insert_edge(0, 1);
        assert_matches_recompute(&dc);
        dc.insert_edge(1, 2);
        assert_matches_recompute(&dc);
        dc.insert_edge(2, 0);
        assert_eq!(dc.coreness_slice(), &[2, 2, 2]);
        dc.remove_edge(0, 1);
        assert_eq!(dc.coreness_slice(), &[1, 1, 1]);
        assert_matches_recompute(&dc);
    }

    #[test]
    fn growing_a_clique_promotes_stepwise() {
        let mut dc = DynamicCore::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                dc.insert_edge(u, v);
                assert_matches_recompute(&dc);
            }
        }
        assert!(dc.coreness_slice().iter().all(|&c| c == 4));
    }

    #[test]
    fn dismantling_a_clique_demotes_stepwise() {
        let mut b = hcd_graph::GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        let mut dc = DynamicCore::from_csr(&b.build());
        let edges: Vec<(u32, u32)> = dc.graph().to_csr().edges().collect();
        for (u, v) in edges {
            dc.remove_edge(u, v);
            assert_matches_recompute(&dc);
        }
        assert!(dc.coreness_slice().iter().all(|&c| c == 0));
    }

    #[test]
    fn insertion_between_different_coreness_regions() {
        // Triangle (coreness 2) + path (coreness 1); bridging them must
        // not promote anyone.
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (3, 4)])
            .build();
        let mut dc = DynamicCore::from_csr(&g);
        dc.insert_edge(0, 3);
        assert_matches_recompute(&dc);
        assert_eq!(dc.coreness(3), 1);
        assert_eq!(dc.coreness(0), 2);
    }

    #[test]
    fn duplicate_and_selfloop_are_noops() {
        let mut dc = DynamicCore::new(3);
        dc.insert_edge(0, 1);
        let before = dc.coreness_slice().to_vec();
        assert!(!dc.insert_edge(0, 1));
        assert!(!dc.insert_edge(2, 2));
        assert!(!dc.remove_edge(0, 2));
        assert_eq!(dc.coreness_slice(), before.as_slice());
    }

    #[test]
    fn noop_detection_matches_application() {
        let mut dc = DynamicCore::new(3);
        dc.insert_edge(0, 1);
        assert!(dc.batch_is_noop(&[]));
        assert!(dc.batch_is_noop(&[
            EdgeUpdate::Insert(0, 1), // duplicate
            EdgeUpdate::Insert(2, 2), // self-loop
            EdgeUpdate::Remove(0, 2), // absent
            EdgeUpdate::Remove(7, 9), // out of range
            EdgeUpdate::Remove(0, 9), // half out of range
        ]));
        assert!(!dc.batch_is_noop(&[EdgeUpdate::Insert(0, 1), EdgeUpdate::Insert(1, 2)]));
        // An insert that grows the vertex set is never a no-op.
        assert!(!dc.batch_is_noop(&[EdgeUpdate::Insert(0, 5)]));
        assert!(!dc.batch_is_noop(&[EdgeUpdate::Remove(0, 1)]));
    }

    #[test]
    fn hcd_cache_refreshes_after_updates() {
        let mut dc = DynamicCore::new(0);
        dc.insert_edge(0, 1);
        dc.insert_edge(1, 2);
        dc.insert_edge(2, 0);
        let exec = Executor::sequential();
        {
            let (_, hcd) = dc.hcd(&exec);
            assert_eq!(hcd.num_nodes(), 1);
            assert_eq!(hcd.node(0).k, 2);
        }
        dc.insert_edge(2, 3);
        let cores = dc.decomposition();
        let (snapshot, hcd) = dc.hcd(&exec);
        assert_eq!(snapshot.num_edges(), 4);
        assert_eq!(hcd.num_nodes(), 2);
        // The refreshed hierarchy matches a from-scratch construction.
        let fresh = hcd_core::naive_hcd(snapshot, &cores);
        assert_eq!(hcd.canonicalize(), fresh.canonicalize());
    }

    #[test]
    fn grows_vertex_set_on_insert() {
        let mut dc = DynamicCore::new(0);
        dc.insert_edge(7, 3);
        assert_eq!(dc.coreness(7), 1);
        assert_eq!(dc.coreness(0), 0);
        assert_matches_recompute(&dc);
    }

    #[test]
    fn batch_equals_singles_and_reports_exact_changed_region() {
        // Triangle {0,1,2} + path 2-3-4. The batch completes K4 on
        // {0,1,2,3} (promoting all four to coreness 3) and strips the
        // pendant edge (demoting 4 to 0).
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
            .build();
        let mut batch = DynamicCore::from_csr(&g);
        let mut singles = DynamicCore::from_csr(&g);
        let updates = [
            EdgeUpdate::Insert(1, 3),
            EdgeUpdate::Insert(0, 3),
            EdgeUpdate::Remove(3, 4),
        ];
        let before = batch.coreness_slice().to_vec();
        let report = batch.apply_batch(&updates);
        singles.insert_edge(1, 3);
        singles.insert_edge(0, 3);
        singles.remove_edge(3, 4);
        assert_eq!(batch.coreness_slice(), singles.coreness_slice());
        assert_eq!(report.applied, 3);
        assert_eq!(report.skipped, 0);
        // 0,1,2: 2→3; 3: 1→3; 4: 1→0 — every vertex moved.
        assert_eq!(batch.coreness_slice(), &[3, 3, 3, 3, 0]);
        assert_ne!(batch.coreness_slice(), before.as_slice());
        assert_eq!(report.changed, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.touched, vec![0, 1, 3, 4]);
        assert_matches_recompute(&batch);
    }

    #[test]
    fn batch_counts_duplicate_inserts_and_missing_removals_as_skipped() {
        let mut dc = DynamicCore::new(3);
        dc.insert_edge(0, 1);
        let report = dc.apply_batch(&[
            EdgeUpdate::Insert(0, 1), // duplicate
            EdgeUpdate::Insert(1, 1), // self-loop
            EdgeUpdate::Remove(0, 2), // absent
            EdgeUpdate::Insert(1, 2), // real
        ]);
        assert_eq!(report.applied, 1);
        assert_eq!(report.skipped, 3);
        assert_eq!(report.changed, vec![2]); // 2 went 0 -> 1
        assert_eq!(report.touched, vec![1, 2]);
        assert_matches_recompute(&dc);
    }

    #[test]
    fn batch_with_cancelling_updates_reports_no_change() {
        let mut dc = DynamicCore::new(4);
        dc.insert_edge(0, 1);
        dc.insert_edge(1, 2);
        let report = dc.apply_batch(&[
            EdgeUpdate::Insert(2, 3),
            EdgeUpdate::Remove(2, 3), // cancels within the batch
        ]);
        assert_eq!(report.applied, 2);
        assert!(report.coreness_unchanged(), "{report:?}");
        assert_matches_recompute(&dc);
    }

    #[test]
    fn empty_batch_is_a_noop_but_still_numbered() {
        let mut dc = DynamicCore::new(2);
        dc.insert_edge(0, 1);
        let report = dc.apply_batch(&[]);
        assert_eq!(
            report,
            BatchReport {
                seq: 1,
                ..BatchReport::default()
            }
        );
    }

    #[test]
    fn batch_sequence_numbers_are_monotone_and_restorable() {
        let mut dc = DynamicCore::new(4);
        assert_eq!(dc.seq(), 0);
        assert_eq!(dc.apply_batch(&[EdgeUpdate::Insert(0, 1)]).seq, 1);
        assert_eq!(dc.apply_batch(&[EdgeUpdate::Insert(1, 2)]).seq, 2);
        assert_eq!(dc.seq(), 2);
        // Recovery resumes numbering from the checkpoint's sequence.
        let mut recovered = DynamicCore::from_csr(&dc.graph().to_csr());
        recovered.set_seq(2);
        assert_eq!(recovered.apply_batch(&[EdgeUpdate::Insert(2, 3)]).seq, 3);
    }

    #[test]
    fn batch_splitting_a_component_demotes_both_halves() {
        // Two triangles joined by a bridge; removing the bridge splits
        // the component but coreness (2 in each triangle) is unaffected,
        // while dismantling one triangle demotes only that half.
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build();
        let mut dc = DynamicCore::from_csr(&g);
        let split = dc.apply_batch(&[EdgeUpdate::Remove(2, 3)]);
        assert!(split.coreness_unchanged(), "{split:?}");
        assert_eq!(split.touched, vec![2, 3]);
        assert_matches_recompute(&dc);
        let dismantle = dc.apply_batch(&[EdgeUpdate::Remove(3, 4)]);
        assert_eq!(dismantle.changed, vec![3, 4, 5]);
        assert_matches_recompute(&dc);
    }

    #[test]
    fn regions_and_counters_cover_the_batch_engine() {
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
            .build();
        let exec = Executor::sequential().with_metrics();
        let mut dc = DynamicCore::from_csr(&g);
        dc.try_apply_batch(&[EdgeUpdate::Insert(1, 3), EdgeUpdate::Remove(3, 4)], &exec)
            .unwrap();
        let m = exec.take_metrics();
        let names: Vec<_> = m.regions.iter().map(|r| r.name).collect();
        assert!(names.contains(&"dynamic.peel"), "{names:?}");
        assert!(names.contains(&"dynamic.promote"), "{names:?}");
        let affected = m.get_counter("dynamic.affected_vertices").unwrap();
        assert_eq!(affected.kind, "sum");
        assert!(affected.value >= 2, "{affected:?}");
        let traversed = m.get_counter("dynamic.traversal_edges").unwrap();
        assert!(traversed.value >= affected.value, "{traversed:?}");
    }

    #[test]
    fn faults_in_the_engine_leave_exact_coreness_behind() {
        use hcd_par::{Fault, FaultPlan};
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
            .build();
        // Panic in dynamic.peel (region 0), then cancel in the first
        // dynamic.promote round (region 1 of a fresh plan).
        for (region, fault) in [(0, Fault::Panic), (1, Fault::Cancel)] {
            let exec = Executor::sequential();
            exec.set_fault_plan(FaultPlan::new().inject(region, 0, fault));
            let mut dc = DynamicCore::from_csr(&g);
            let seq_before = dc.seq();
            let err = dc
                .try_apply_batch(&[EdgeUpdate::Insert(1, 3), EdgeUpdate::Remove(3, 4)], &exec)
                .unwrap_err();
            match region {
                0 => assert!(matches!(err, ParError::Panicked { .. }), "{err:?}"),
                _ => assert!(matches!(err, ParError::Cancelled), "{err:?}"),
            }
            // The mutation is kept, the sequence number advanced, and
            // coreness was repaired to the exact decomposition.
            assert_eq!(dc.seq(), seq_before + 1);
            assert!(dc.graph().has_edge(1, 3));
            assert!(!dc.graph().has_edge(3, 4));
            assert_matches_recompute(&dc);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32, u32),
        Remove(u32, u32),
    }

    fn arb_ops(max_n: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            (any::<bool>(), 0..max_n, 0..max_n).prop_map(|(ins, a, b)| {
                if ins {
                    Op::Insert(a, b)
                } else {
                    Op::Remove(a, b)
                }
            }),
            1..len,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_update_sequences_match_recomputation(ops in arb_ops(16, 120)) {
            let mut dc = DynamicCore::new(16);
            for op in ops {
                match op {
                    Op::Insert(a, b) => {
                        dc.insert_edge(a, b);
                    }
                    Op::Remove(a, b) => {
                        dc.remove_edge(a, b);
                    }
                }
                let snapshot = dc.graph().to_csr();
                let expect = core_decomposition(&snapshot);
                prop_assert_eq!(dc.coreness_slice(), expect.as_slice());
            }
        }

        #[test]
        fn insert_then_remove_is_identity(edges in prop::collection::vec((0..14u32, 0..14u32), 1..60), extra in (0..14u32, 0..14u32)) {
            let mut dc = DynamicCore::new(14);
            for (a, b) in edges {
                dc.insert_edge(a, b);
            }
            let before = dc.coreness_slice().to_vec();
            let (a, b) = extra;
            if dc.insert_edge(a, b) {
                dc.remove_edge(a, b);
            }
            prop_assert_eq!(dc.coreness_slice(), before.as_slice());
        }

        #[test]
        fn duplicate_insert_in_a_batch_changes_nothing(edges in prop::collection::vec((0..12u32, 0..12u32), 1..40)) {
            // Re-inserting every existing edge (and removing every absent
            // pair) must be a pure no-op with an all-skipped report.
            let mut dc = DynamicCore::new(12);
            for &(a, b) in &edges {
                dc.insert_edge(a, b);
            }
            let before = dc.coreness_slice().to_vec();
            let mut noops = Vec::new();
            for u in 0..12u32 {
                for v in u..12u32 {
                    if dc.graph().has_edge(u, v) {
                        noops.push(EdgeUpdate::Insert(u, v));
                    } else {
                        noops.push(EdgeUpdate::Remove(u, v));
                    }
                }
            }
            prop_assert!(dc.batch_is_noop(&noops));
            let report = dc.apply_batch(&noops);
            prop_assert_eq!(report.applied, 0);
            prop_assert_eq!(report.skipped, noops.len());
            prop_assert!(report.coreness_unchanged());
            prop_assert_eq!(dc.coreness_slice(), before.as_slice());
        }

        #[test]
        fn batch_matches_recomputation_and_single_edge_application(
            edges in prop::collection::vec((0..14u32, 0..14u32), 1..50),
            ops in arb_ops(14, 60),
        ) {
            let mut batched = DynamicCore::new(14);
            for &(a, b) in &edges {
                batched.insert_edge(a, b);
            }
            let mut singles = batched.graph().clone();
            let before = batched.coreness_slice().to_vec();
            let updates: Vec<EdgeUpdate> = ops
                .iter()
                .map(|op| match *op {
                    Op::Insert(a, b) => EdgeUpdate::Insert(a, b),
                    Op::Remove(a, b) => EdgeUpdate::Remove(a, b),
                })
                .collect();
            let report = batched.apply_batch(&updates);
            // Edge-set agreement with plain graph updates.
            for u in &updates {
                match *u {
                    EdgeUpdate::Insert(a, b) => { singles.insert_edge(a, b); }
                    EdgeUpdate::Remove(a, b) => { singles.remove_edge(a, b); }
                }
            }
            prop_assert_eq!(batched.graph().to_csr(), singles.to_csr());
            // Coreness agreement with from-scratch decomposition.
            let expect = core_decomposition(&batched.graph().to_csr());
            prop_assert_eq!(batched.coreness_slice(), expect.as_slice());
            // The changed-region report is the exact before/after diff.
            let diff: Vec<VertexId> = (0..batched.coreness_slice().len())
                .filter(|&v| batched.coreness_slice()[v] != before.get(v).copied().unwrap_or(0))
                .map(|v| v as VertexId)
                .collect();
            prop_assert_eq!(report.changed, diff);
        }

        #[test]
        fn component_splits_and_merges_match_recomputation(
            bridge in (0..6u32, 6..12u32),
            left in prop::collection::vec((0..6u32, 0..6u32), 4..16),
            right in prop::collection::vec((6..12u32, 6..12u32), 4..16),
        ) {
            // Two islands joined by one bridge; removing and re-adding the
            // bridge splits and merges the connected component.
            let mut dc = DynamicCore::new(12);
            for &(a, b) in left.iter().chain(right.iter()) {
                dc.insert_edge(a, b);
            }
            let (u, v) = bridge;
            dc.insert_edge(u, v);
            let joined = dc.coreness_slice().to_vec();
            dc.apply_batch(&[EdgeUpdate::Remove(u, v)]);
            let expect_split = core_decomposition(&dc.graph().to_csr());
            prop_assert_eq!(dc.coreness_slice(), expect_split.as_slice());
            let merge = dc.apply_batch(&[EdgeUpdate::Insert(u, v)]);
            prop_assert_eq!(dc.coreness_slice(), joined.as_slice());
            let expect_merged = core_decomposition(&dc.graph().to_csr());
            prop_assert_eq!(dc.coreness_slice(), expect_merged.as_slice());
            // Split + merge round-trips the report too: the merge must
            // undo exactly what the split changed.
            prop_assert!(merge.applied == 1);
        }

        #[test]
        fn insert_remove_insert_converges_to_scratch(
            edges in prop::collection::vec((0..12u32, 0..12u32), 1..40),
            churn in prop::collection::vec((0..12u32, 0..12u32), 1..12),
        ) {
            let mut dc = DynamicCore::new(12);
            for &(a, b) in &edges {
                dc.insert_edge(a, b);
            }
            // insert → remove → insert each churn pair: the edge ends up
            // present, and coreness must equal a fresh decomposition.
            let updates: Vec<EdgeUpdate> = churn
                .iter()
                .flat_map(|&(a, b)| {
                    [
                        EdgeUpdate::Insert(a, b),
                        EdgeUpdate::Remove(a, b),
                        EdgeUpdate::Insert(a, b),
                    ]
                })
                .collect();
            dc.apply_batch(&updates);
            for &(a, b) in &churn {
                if a != b {
                    prop_assert!(dc.graph().has_edge(a, b));
                }
            }
            let expect = core_decomposition(&dc.graph().to_csr());
            prop_assert_eq!(dc.coreness_slice(), expect.as_slice());
        }

        #[test]
        fn adversarial_insert_remove_same_edge_across_a_core_boundary(
            tail in 2..6usize,
            extra in prop::collection::vec((0..10u32, 0..10u32), 0..12),
            flips in 1..4usize,
        ) {
            // A dense clique (high coreness) with a pendant path (coreness
            // 1) hanging off it: a k-core boundary by construction. The
            // batch repeatedly inserts AND removes the same boundary-
            // crossing edge, plus random churn, so the engine sees
            // cancelling updates whose subcores straddle the boundary.
            let mut dc = DynamicCore::new(10);
            for u in 0..4u32 {
                for v in (u + 1)..4 {
                    dc.insert_edge(u, v); // K4: coreness 3
                }
            }
            for i in 0..tail as u32 {
                dc.insert_edge(3 + i, 4 + i); // path off vertex 3
            }
            for &(a, b) in &extra {
                dc.insert_edge(a, b);
            }
            let before = dc.coreness_slice().to_vec();
            // The boundary edge: clique vertex 0 to the path's far end.
            let far = 3 + tail as u32;
            let mut updates = Vec::new();
            for _ in 0..flips {
                updates.push(EdgeUpdate::Insert(0, far));
                updates.push(EdgeUpdate::Remove(0, far));
            }
            let had_edge = dc.graph().has_edge(0, far);
            let report = dc.apply_batch(&updates);
            // The last flip is always a Remove of a then-present edge,
            // so the batch leaves the boundary edge absent...
            prop_assert!(!dc.graph().has_edge(0, far));
            // ...and if it was absent to begin with, every flip applied
            // and they all cancelled without a trace in the coreness.
            if !had_edge {
                prop_assert_eq!(report.applied, 2 * flips);
                prop_assert_eq!(dc.coreness_slice(), before.as_slice());
            }
            let expect = core_decomposition(&dc.graph().to_csr());
            prop_assert_eq!(dc.coreness_slice(), expect.as_slice());
        }
    }
}
