//! Mutable adjacency-set graph.

use hcd_graph::{CsrGraph, FxHashSet, GraphBuilder, VertexId};

/// An undirected simple graph that supports edge insertion and removal.
///
/// Adjacency is kept in hash sets for `O(1)` expected updates and
/// membership tests; convert to [`CsrGraph`] for the (immutable,
/// cache-friendly) algorithms of the rest of the workspace.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    adj: Vec<FxHashSet<VertexId>>,
    num_edges: usize,
}

impl DynamicGraph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            adj: vec![FxHashSet::default(); n],
            num_edges: 0,
        }
    }

    /// Imports a static graph.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut dg = DynamicGraph::new(g.num_vertices());
        for (u, v) in g.edges() {
            dg.insert_edge(u, v);
        }
        dg
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Whether `{u, v}` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj[u as usize].contains(&v)
    }

    /// Iterates the neighbors of `v` (unordered).
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj[v as usize].iter().copied()
    }

    /// Ensures vertex ids up to `v` exist.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v as usize >= self.adj.len() {
            self.adj.resize_with(v as usize + 1, FxHashSet::default);
        }
    }

    /// Inserts `{u, v}`; returns `false` if it already existed or is a
    /// self-loop. Grows the vertex set as needed.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        self.ensure_vertex(u.max(v));
        if !self.adj[u as usize].insert(v) {
            return false;
        }
        self.adj[v as usize].insert(u);
        self.num_edges += 1;
        true
    }

    /// Removes `{u, v}`; returns `false` if it was absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return false;
        }
        if !self.adj[u as usize].remove(&v) {
            return false;
        }
        self.adj[v as usize].remove(&u);
        self.num_edges -= 1;
        true
    }

    /// Snapshots into an immutable CSR graph.
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = GraphBuilder::new().min_vertices(self.adj.len());
        for (v, nbrs) in self.adj.iter().enumerate() {
            for &u in nbrs {
                if u > v as VertexId {
                    b = b.edge(v as VertexId, u);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = DynamicGraph::new(4);
        assert!(g.insert_edge(0, 1));
        assert!(!g.insert_edge(1, 0)); // duplicate
        assert!(!g.insert_edge(2, 2)); // self-loop
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn grows_on_demand() {
        let mut g = DynamicGraph::new(0);
        assert!(g.insert_edge(5, 9));
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 1);
    }

    #[test]
    fn csr_roundtrip() {
        let csr = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (3, 4)])
            .min_vertices(6)
            .build();
        let dg = DynamicGraph::from_csr(&csr);
        assert_eq!(dg.to_csr(), csr);
    }

    #[test]
    fn removal_of_missing_vertex_edge_is_noop() {
        let mut g = DynamicGraph::new(2);
        assert!(!g.remove_edge(0, 7));
        assert_eq!(g.num_edges(), 0);
    }
}
