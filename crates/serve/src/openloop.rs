//! A seeded **open-loop** load generator over the ingress queue.
//!
//! Closed-loop drivers (like [`crate::workload`]) issue the next
//! operation only after the previous one finishes, so they can never
//! overload the service — exactly the regime where admission control
//! is invisible. The open-loop generator instead *offers* load at a
//! configured rate on a virtual clock: each 1 ms tick admits the
//! arrivals the rate dictates (whether or not the service kept up),
//! then drains at most one batch. When offered rate exceeds drain
//! capacity the queue climbs to the watermark and the overflow sheds —
//! deterministically, because the arrival schedule, the queue dynamics,
//! and the drain cadence are all pure functions of the config under a
//! single-threaded executor.
//!
//! The virtual clock is also why the generator is reproducible in CI:
//! no wall-clock sleeps, no timing races — "one tick" is a unit of
//! *schedule*, not of time. Latency numbers still come from the real
//! histogram layer (the drains go through `serve.query.batch`).

use hcd_dynamic::EdgeUpdate;
use hcd_par::{Deadline, Executor};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::ingress::IngressQueue;
use crate::service::{HcdService, ServeError};
use crate::workload::WorkloadConfig;

/// Knobs for [`run_open_loop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopConfig {
    /// RNG seed for the query/update stream.
    pub seed: u64,
    /// Offered arrival rate, in queries per (virtual) second. Arrivals
    /// are spread evenly across the 1 ms ticks by fixed-point
    /// accumulation, so any rate ≥ 1 qps is representable.
    pub offered_qps: u64,
    /// Number of 1 ms virtual ticks to run (1000 = one virtual second).
    pub ticks: u64,
    /// Maximum requests drained (and answered as one batch) per tick.
    pub drain_batch: usize,
    /// Queue-depth shed watermark.
    pub watermark: usize,
    /// Per-request deadline in milliseconds; `Some(0)` stamps an
    /// already-expired deadline on every arrival (the deterministic
    /// "fully shed" regime), `None` disables deadlines.
    pub deadline_ms: Option<u64>,
    /// Apply one small update batch every this-many ticks (`0` =
    /// read-only), exercising publication + cache invalidation under
    /// load.
    pub update_every: u64,
    /// Vertex universe for the query stream.
    pub universe: u32,
    /// Hot-set fraction, as in [`WorkloadConfig::hot_fraction`].
    pub hot_fraction: f64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            seed: 42,
            offered_qps: 10_000,
            ticks: 1000,
            drain_batch: 32,
            watermark: 256,
            deadline_ms: None,
            update_every: 100,
            universe: 256,
            hot_fraction: 0.5,
        }
    }
}

/// What one open-loop run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenLoopSummary {
    /// Arrivals offered to admission control.
    pub offered: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests answered (drained and served).
    pub answered: u64,
    /// Arrivals shed at the door for queue depth.
    pub shed_overloaded: u64,
    /// Requests shed for an expired deadline (at the door or at drain).
    pub shed_deadline: u64,
    /// Highest queue depth observed after any tick's arrivals.
    pub max_depth: usize,
    /// Update batches applied (publications, minus no-ops).
    pub update_batches: u64,
    /// Final published generation.
    pub final_generation: u64,
}

impl OpenLoopSummary {
    /// Total sheds.
    pub fn shed(&self) -> u64 {
        self.shed_overloaded + self.shed_deadline
    }

    /// Fraction of offered load that was shed, in `[0, 1]`.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }

    /// Whether the run was fully shed: load was offered and *nothing*
    /// was answered (the CLI maps this to its saturated exit code).
    pub fn saturated(&self) -> bool {
        self.offered > 0 && self.answered == 0
    }
}

/// Drives `cfg.ticks` virtual milliseconds of open-loop load through
/// `ingress` into `svc`. See the module docs for the model; the queue
/// dynamics (and hence every shed decision) are deterministic given
/// `cfg` under a single-threaded executor.
pub fn run_open_loop(
    svc: &HcdService,
    ingress: &IngressQueue,
    cfg: &OpenLoopConfig,
    exec: &Executor,
) -> Result<OpenLoopSummary, ServeError> {
    assert!(cfg.universe > 0, "vertex universe must be non-empty");
    let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(cfg.seed);
    let mut summary = OpenLoopSummary::default();
    // Reuse the workload's query distribution so the open and closed
    // loops probe the same answer space.
    let wl = WorkloadConfig {
        seed: cfg.seed,
        universe: cfg.universe,
        hot_fraction: cfg.hot_fraction,
        ..WorkloadConfig::default()
    };
    // Fixed-point arrival accumulator: `acc` gains `offered_qps` per
    // tick and every 1000 units is one arrival, so arrivals per tick
    // are exactly offered_qps/1000 on average with no float drift.
    let mut acc: u64 = 0;
    for tick in 0..cfg.ticks {
        acc += cfg.offered_qps;
        while acc >= 1000 {
            acc -= 1000;
            summary.offered += 1;
            let q = crate::workload::random_query_mixed(&mut rng, &wl);
            let deadline = cfg
                .deadline_ms
                .map(|ms| Deadline::from_now(std::time::Duration::from_millis(ms)));
            match ingress.try_enqueue(q, deadline, exec) {
                Ok(_) => summary.admitted += 1,
                Err(crate::admission::Rejected::Overloaded { .. }) => summary.shed_overloaded += 1,
                Err(crate::admission::Rejected::DeadlineExceeded) => summary.shed_deadline += 1,
            }
        }
        summary.max_depth = summary.max_depth.max(ingress.depth());
        let drained = ingress.try_drain_batch(svc, cfg.drain_batch, exec)?;
        summary.answered += drained.answered.len() as u64;
        summary.shed_deadline += drained.shed_deadline;
        if cfg.update_every > 0 && (tick + 1) % cfg.update_every == 0 {
            let updates: Vec<EdgeUpdate> = (0..4)
                .map(|_| {
                    let u = rng.gen_range(0..cfg.universe);
                    let mut v = rng.gen_range(0..cfg.universe);
                    if v == u {
                        v = (v + 1) % cfg.universe;
                    }
                    EdgeUpdate::Insert(u, v)
                })
                .collect();
            svc.try_apply_batch(&updates, exec)?;
            summary.update_batches += 1;
        }
    }
    // Final drains: empty the queue so "answered + shed" accounts for
    // every admitted request (bounded — the queue only shrinks now).
    while ingress.depth() > 0 {
        let drained = ingress.try_drain_batch(svc, cfg.drain_batch, exec)?;
        summary.answered += drained.answered.len() as u64;
        summary.shed_deadline += drained.shed_deadline;
    }
    summary.final_generation = svc.generation();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use hcd_graph::GraphBuilder;

    fn seed_graph() -> hcd_graph::CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
    }

    fn ingress(watermark: usize) -> IngressQueue {
        IngressQueue::new(AdmissionConfig {
            watermark,
            default_deadline: None,
        })
    }

    #[test]
    fn underload_answers_everything() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&seed_graph(), &exec);
        let cfg = OpenLoopConfig {
            offered_qps: 8_000, // 8 arrivals/tick << 32 drained/tick
            ticks: 100,
            update_every: 0,
            universe: 16,
            ..OpenLoopConfig::default()
        };
        let s = run_open_loop(&svc, &ingress(cfg.watermark), &cfg, &exec).unwrap();
        assert_eq!(s.offered, 800);
        assert_eq!(s.answered, 800);
        assert_eq!(s.shed(), 0);
        assert_eq!(s.shed_fraction(), 0.0);
        assert!(!s.saturated());
    }

    #[test]
    fn overload_sheds_deterministically_at_the_watermark() {
        let cfg = OpenLoopConfig {
            offered_qps: 100_000, // 100 arrivals/tick vs 32 drained
            ticks: 50,
            watermark: 64,
            update_every: 0,
            universe: 16,
            ..OpenLoopConfig::default()
        };
        let mut runs = Vec::new();
        for _ in 0..2 {
            let exec = Executor::sequential();
            let svc = HcdService::new(&seed_graph(), &exec);
            runs.push(run_open_loop(&svc, &ingress(cfg.watermark), &cfg, &exec).unwrap());
        }
        assert_eq!(runs[0], runs[1], "open loop must be deterministic");
        let s = runs[0];
        assert_eq!(s.offered, 5000);
        assert!(s.shed_overloaded > 0, "{s:?}");
        assert_eq!(s.offered, s.answered + s.shed());
        assert!(s.max_depth <= cfg.watermark, "{s:?}");
        assert!(s.shed_fraction() > 0.5, "{s:?}");
    }

    #[test]
    fn zero_deadline_sheds_everything() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&seed_graph(), &exec);
        let cfg = OpenLoopConfig {
            offered_qps: 5_000,
            ticks: 20,
            deadline_ms: Some(0),
            update_every: 0,
            universe: 16,
            ..OpenLoopConfig::default()
        };
        let s = run_open_loop(&svc, &ingress(cfg.watermark), &cfg, &exec).unwrap();
        assert_eq!(s.offered, 100);
        assert_eq!(s.answered, 0);
        assert_eq!(s.shed_deadline, 100);
        assert!(s.saturated());
        assert_eq!(s.shed_fraction(), 1.0);
    }

    #[test]
    fn updates_publish_under_load() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&seed_graph(), &exec);
        let cfg = OpenLoopConfig {
            offered_qps: 4_000,
            ticks: 100,
            update_every: 25,
            universe: 16,
            ..OpenLoopConfig::default()
        };
        let s = run_open_loop(&svc, &ingress(cfg.watermark), &cfg, &exec).unwrap();
        assert_eq!(s.update_batches, 4);
        assert!(s.final_generation >= 1);
        assert!(s.answered > 0);
    }
}
