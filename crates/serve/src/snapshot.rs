//! One immutable, generation-stamped index state.

use hcd_core::Hcd;
use hcd_decomp::CoreDecomposition;
use hcd_graph::CsrGraph;
use hcd_par::{Executor, ParError};

/// An immutable bundle of everything queries need, published atomically
/// as one unit so no reader can ever pair a graph with the wrong
/// decomposition or hierarchy.
///
/// Snapshots are never mutated after construction; the service replaces
/// the whole `Arc<Snapshot>` on every batch publication. The
/// `generation` field records which epoch swap produced this state
/// (0 for the initial build), and is echoed in every
/// [`Response`](crate::Response).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The graph this snapshot serves.
    pub graph: CsrGraph,
    /// Its core decomposition.
    pub cores: CoreDecomposition,
    /// Its hierarchical core decomposition.
    pub hcd: Hcd,
    /// The epoch this snapshot was published at.
    pub generation: u64,
}

impl Snapshot {
    /// Builds generation-`generation` state from a graph: PKC core
    /// decomposition + PHCD, both under `exec` (regions `pkc.*`,
    /// `phcd.*` — the same pipeline as a from-scratch construction).
    pub fn try_build(g: &CsrGraph, generation: u64, exec: &Executor) -> Result<Self, ParError> {
        let (cores, hcd) = hcd_core::try_build_with_order(g, hcd_core::VertexOrder::None, exec)?;
        Ok(Snapshot {
            graph: g.clone(),
            cores,
            hcd,
            generation,
        })
    }

    /// Assembles a snapshot from already-computed parts (the rebuild
    /// path: the writer maintains coreness incrementally and only
    /// reruns PHCD).
    pub fn from_parts(
        graph: CsrGraph,
        cores: CoreDecomposition,
        hcd: Hcd,
        generation: u64,
    ) -> Self {
        Snapshot {
            graph,
            cores,
            hcd,
            generation,
        }
    }

    /// Full internal-consistency check: the decomposition is feasible
    /// for the graph and the hierarchy validates against both. Intended
    /// for tests and debugging, not the serving path.
    pub fn validate(&self) -> Result<(), String> {
        self.cores.check_feasible(&self.graph)?;
        self.hcd.validate(&self.graph, &self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    #[test]
    fn build_and_validate() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let snap = Snapshot::try_build(&g, 0, &Executor::sequential()).unwrap();
        assert_eq!(snap.generation, 0);
        snap.validate().unwrap();
        let naive = hcd_core::naive_hcd(&g, &snap.cores);
        assert_eq!(snap.hcd.canonicalize(), naive.canonicalize());
    }
}
