//! One immutable, generation-stamped index state.

use hcd_core::Hcd;
use hcd_decomp::CoreDecomposition;
use hcd_graph::CsrGraph;
use hcd_par::{Executor, ParError};

/// An immutable bundle of everything queries need, published atomically
/// as one unit so no reader can ever pair a graph with the wrong
/// decomposition or hierarchy.
///
/// Snapshots are never mutated after construction; the service replaces
/// the whole `Arc<Snapshot>` on every batch publication. The
/// `generation` field records which epoch swap produced this state
/// (0 for the initial build), and is echoed in every
/// [`Response`](crate::Response).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The graph this snapshot serves.
    pub graph: CsrGraph,
    /// Its core decomposition.
    pub cores: CoreDecomposition,
    /// Its hierarchical core decomposition.
    pub hcd: Hcd,
    /// The epoch this snapshot was published at.
    pub generation: u64,
}

impl Snapshot {
    /// Builds generation-`generation` state from a graph: PKC core
    /// decomposition + PHCD, both under `exec` (regions `pkc.*`,
    /// `phcd.*` — the same pipeline as a from-scratch construction).
    pub fn try_build(g: &CsrGraph, generation: u64, exec: &Executor) -> Result<Self, ParError> {
        let (cores, hcd) = hcd_core::try_build_with_order(g, hcd_core::VertexOrder::None, exec)?;
        Ok(Snapshot {
            graph: g.clone(),
            cores,
            hcd,
            generation,
        })
    }

    /// Assembles a snapshot from already-computed parts (the rebuild
    /// path: the writer maintains coreness incrementally and only
    /// reruns PHCD).
    pub fn from_parts(
        graph: CsrGraph,
        cores: CoreDecomposition,
        hcd: Hcd,
        generation: u64,
    ) -> Self {
        Snapshot {
            graph,
            cores,
            hcd,
            generation,
        }
    }

    /// A checksum fingerprint of the *index state*: the graph's
    /// checksummed binary image, the coreness array, and the
    /// canonicalized hierarchy, all streamed through one CRC-32. The
    /// `generation` field is deliberately excluded (a recovered service
    /// renumbers epochs from the replayed batch sequence) and the
    /// hierarchy is canonicalized first, so two snapshots fingerprint
    /// equal iff they index the same state — regardless of which
    /// executor mode, construction order, or crash/recovery path
    /// produced them. The upper 32 bits carry the vertex count so
    /// trivially different graphs cannot collide to the same value.
    pub fn fingerprint(&self) -> u64 {
        let mut h = hcd_graph::Crc32::new();
        let mut bytes = Vec::new();
        hcd_graph::io::write_binary(&self.graph, &mut bytes)
            .expect("serializing to a Vec cannot fail");
        h.update(&bytes);
        for v in 0..self.graph.num_vertices() {
            h.update(&self.cores.coreness(v as u32).to_le_bytes());
        }
        for node in &self.hcd.canonicalize().nodes {
            h.update(&node.k.to_le_bytes());
            h.update(&(node.vertices.len() as u64).to_le_bytes());
            for &v in &node.vertices {
                h.update(&v.to_le_bytes());
            }
            h.update(&node.parent.map_or(u32::MAX, |p| p).to_le_bytes());
        }
        ((self.graph.num_vertices() as u64) << 32) | h.finish() as u64
    }

    /// Full internal-consistency check: the decomposition is feasible
    /// for the graph and the hierarchy validates against both. Intended
    /// for tests and debugging, not the serving path.
    pub fn validate(&self) -> Result<(), String> {
        self.cores.check_feasible(&self.graph)?;
        self.hcd.validate(&self.graph, &self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    #[test]
    fn build_and_validate() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let snap = Snapshot::try_build(&g, 0, &Executor::sequential()).unwrap();
        assert_eq!(snap.generation, 0);
        snap.validate().unwrap();
        let naive = hcd_core::naive_hcd(&g, &snap.cores);
        assert_eq!(snap.hcd.canonicalize(), naive.canonicalize());
    }

    #[test]
    fn fingerprint_ignores_generation_but_not_state() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let exec = Executor::sequential();
        let a = Snapshot::try_build(&g, 0, &exec).unwrap();
        let b = Snapshot::try_build(&g, 17, &exec).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());

        let g2 = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)])
            .build();
        let c = Snapshot::try_build(&g2, 0, &exec).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_is_mode_independent() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0), (1, 4)])
            .build();
        let seq = Snapshot::try_build(&g, 0, &Executor::sequential()).unwrap();
        let ray = Snapshot::try_build(&g, 0, &Executor::rayon(4)).unwrap();
        let sim = Snapshot::try_build(&g, 0, &Executor::simulated(4)).unwrap();
        assert_eq!(seq.fingerprint(), ray.fingerprint());
        assert_eq!(seq.fingerprint(), sim.fingerprint());
    }
}
