//! Seeded mixed read/update workload — the engine behind
//! `hcd-cli serve-bench`.
//!
//! The driver issues a reproducible interleaving of query batches and
//! edge-update batches against an [`HcdService`], controlled by a
//! [`WorkloadConfig`]: same seed + same config ⇒ the same operation
//! sequence on every run and in every executor mode, which is what lets
//! CI gate the `serve.*` counters against a committed baseline.

use hcd_dynamic::EdgeUpdate;
use hcd_graph::VertexId;
use hcd_par::Executor;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::service::{HcdService, Query, QueryAnswer, ServeError};

/// Knobs for [`run_workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed; the whole operation stream is a pure function of it
    /// (plus the other knobs).
    pub seed: u64,
    /// Number of operations. Each op is either one query batch or one
    /// update batch.
    pub ops: usize,
    /// Queries per read op / edge updates per write op.
    pub batch_size: usize,
    /// Probability in `[0, 1]` that an op is a read.
    pub read_ratio: f64,
    /// Vertex ids are drawn from `0..universe`. May exceed the graph's
    /// current vertex count: inserts grow the graph, and queries on
    /// not-yet-existing ids exercise the stale-id paths.
    pub universe: VertexId,
    /// Probability in `[0, 1]` that a query draw is a *hot* query: a
    /// `CoreContaining` probe on a small fixed vertex set. Hot traffic
    /// is what a memo cache exists for — repeated identical probes
    /// within one generation. `0.0` (the default) adds **no** RNG
    /// draws, so the operation stream is byte-for-byte the historical
    /// one.
    pub hot_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            ops: 64,
            batch_size: 32,
            read_ratio: 0.9,
            universe: 256,
            hot_fraction: 0.0,
        }
    }
}

/// What a workload run did, for reporting and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkloadSummary {
    /// Individual queries answered.
    pub queries: u64,
    /// Query batches issued.
    pub query_batches: u64,
    /// Single-query read ops issued through the typed per-query-type
    /// entry points (`try_core_containing` & co.), which is what
    /// populates the `serve.query.core` / `.position` / `.member` /
    /// `.same` latency histograms.
    pub single_queries: u64,
    /// Update batches applied (each one publishes a snapshot, unless
    /// the writer's no-op fast path kicked in).
    pub update_batches: u64,
    /// Update batches that changed nothing and therefore published no
    /// new generation.
    pub noop_update_batches: u64,
    /// Edge updates the dynamic maintainer actually applied.
    pub updates_applied: u64,
    /// Edge updates skipped as no-ops (duplicate insert / missing
    /// remove).
    pub updates_skipped: u64,
    /// Queries that answered `Some` / `true` (a cheap cross-mode
    /// fingerprint of the answer stream).
    pub positive_answers: u64,
    /// Generation of the last published snapshot.
    pub final_generation: u64,
}

/// Fraction of read ops issued as one typed single query instead of a
/// full batch.
const SINGLE_QUERY_RATIO: f64 = 0.25;

/// Vertices `0..HOT_SET` are the hot set `hot_fraction` concentrates
/// on.
const HOT_SET: VertexId = 8;

pub(crate) fn random_query_mixed(rng: &mut ChaCha8Rng, cfg: &WorkloadConfig) -> Query {
    if cfg.hot_fraction > 0.0 && rng.gen_bool(cfg.hot_fraction.clamp(0.0, 1.0)) {
        let v = rng.gen_range(0..HOT_SET.min(cfg.universe));
        let k = rng.gen_range(0..4u32);
        return Query::CoreContaining(v, k);
    }
    random_query(rng, cfg.universe)
}

fn random_query(rng: &mut ChaCha8Rng, universe: VertexId) -> Query {
    let v = rng.gen_range(0..universe);
    let k = rng.gen_range(0..6u32);
    match rng.gen_range(0..4u32) {
        0 => Query::CoreContaining(v, k),
        1 => Query::HierarchyPosition(v),
        2 => Query::InKCore(v, k),
        _ => Query::SameKCore(v, rng.gen_range(0..universe), k),
    }
}

fn random_update(rng: &mut ChaCha8Rng, universe: VertexId) -> EdgeUpdate {
    let u = rng.gen_range(0..universe);
    let mut v = rng.gen_range(0..universe);
    if v == u {
        v = (v + 1) % universe;
    }
    // Bias toward inserts so the graph densifies over the run and the
    // hierarchy actually deepens.
    if rng.gen_bool(0.7) {
        EdgeUpdate::Insert(u, v)
    } else {
        EdgeUpdate::Remove(u, v)
    }
}

fn is_positive(a: &QueryAnswer) -> bool {
    match a {
        QueryAnswer::CoreContaining(m) => m.is_some(),
        QueryAnswer::HierarchyPosition(p) => p.is_some(),
        QueryAnswer::InKCore(b) | QueryAnswer::SameKCore(b) => *b,
    }
}

/// Drives `cfg.ops` operations against `service` under `exec` and
/// reports what happened. Deterministic given `cfg` (the operation
/// stream never depends on answers or timing).
pub fn run_workload(
    service: &HcdService,
    cfg: &WorkloadConfig,
    exec: &Executor,
) -> Result<WorkloadSummary, ServeError> {
    run_workload_with(service, cfg, exec, 0, |_, _| {})
}

/// [`run_workload`] with a progress hook: when `progress_every > 0`,
/// `progress(ops_done, &summary_so_far)` is called after every
/// `progress_every` completed operations (`serve-bench
/// --stats-interval` prints in-flight histogram snapshots from it).
/// The hook never affects the operation stream, so determinism is
/// preserved.
pub fn run_workload_with<F>(
    service: &HcdService,
    cfg: &WorkloadConfig,
    exec: &Executor,
    progress_every: usize,
    mut progress: F,
) -> Result<WorkloadSummary, ServeError>
where
    F: FnMut(usize, &WorkloadSummary),
{
    assert!(cfg.universe > 0, "vertex universe must be non-empty");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(cfg.seed);
    let mut summary = WorkloadSummary::default();
    for op in 0..cfg.ops {
        if rng.gen_bool(cfg.read_ratio.clamp(0.0, 1.0)) {
            if rng.gen_bool(SINGLE_QUERY_RATIO) {
                // One query through its typed entry point, so every
                // per-query-type region and latency histogram
                // (`serve.query.core` / `.position` / `.member` /
                // `.same`) sees real traffic.
                let q = random_query_mixed(&mut rng, cfg);
                let positive = match q {
                    Query::CoreContaining(v, k) => {
                        service.try_core_containing(v, k, exec)?.value.is_some()
                    }
                    Query::HierarchyPosition(v) => {
                        service.try_hierarchy_position(v, exec)?.value.is_some()
                    }
                    Query::InKCore(v, k) => service.try_in_k_core(v, k, exec)?.value,
                    Query::SameKCore(u, v, k) => service.try_same_k_core(u, v, k, exec)?.value,
                };
                summary.queries += 1;
                summary.single_queries += 1;
                summary.positive_answers += positive as u64;
            } else {
                let queries: Vec<Query> = (0..cfg.batch_size)
                    .map(|_| random_query_mixed(&mut rng, cfg))
                    .collect();
                let batch = service.try_query_batch(&queries, exec)?;
                summary.queries += batch.answers.len() as u64;
                summary.query_batches += 1;
                summary.positive_answers +=
                    batch.answers.iter().filter(|a| is_positive(a)).count() as u64;
            }
        } else {
            let updates: Vec<EdgeUpdate> = (0..cfg.batch_size)
                .map(|_| random_update(&mut rng, cfg.universe))
                .collect();
            let before = service.generation();
            let resp = service.try_apply_batch(&updates, exec)?;
            summary.update_batches += 1;
            summary.updates_applied += resp.value.applied as u64;
            summary.updates_skipped += resp.value.skipped as u64;
            if resp.generation == before {
                summary.noop_update_batches += 1;
            }
        }
        if progress_every > 0 && (op + 1) % progress_every == 0 {
            summary.final_generation = service.generation();
            progress(op + 1, &summary);
        }
    }
    summary.final_generation = service.generation();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    fn seed_graph() -> hcd_graph::CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
    }

    #[test]
    fn workload_is_deterministic_across_modes() {
        let cfg = WorkloadConfig {
            ops: 24,
            batch_size: 8,
            universe: 32,
            read_ratio: 0.6,
            ..WorkloadConfig::default()
        };
        let mut summaries = Vec::new();
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(4),
        ] {
            let svc = HcdService::new(&seed_graph(), &exec);
            summaries.push((exec.mode_name(), run_workload(&svc, &cfg, &exec).unwrap()));
        }
        let (_, first) = summaries[0];
        for (mode, s) in &summaries {
            assert_eq!(*s, first, "mode {mode} diverged");
        }
        assert!(first.update_batches > 0, "workload never wrote: {first:?}");
        assert_eq!(
            first.final_generation,
            first.update_batches - first.noop_update_batches
        );
        assert_eq!(
            first.queries,
            first.query_batches * cfg.batch_size as u64 + first.single_queries
        );
        assert!(first.single_queries > 0, "no typed single queries ran");
    }

    #[test]
    fn read_only_workload_never_publishes() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&seed_graph(), &exec);
        let cfg = WorkloadConfig {
            read_ratio: 1.0,
            ops: 10,
            batch_size: 4,
            universe: 16,
            ..WorkloadConfig::default()
        };
        let s = run_workload(&svc, &cfg, &exec).unwrap();
        assert_eq!(s.update_batches, 0);
        assert_eq!(s.final_generation, 0);
        assert_eq!(s.query_batches + s.single_queries, 10, "every op is a read");
        assert_eq!(
            s.queries,
            s.query_batches * cfg.batch_size as u64 + s.single_queries
        );
    }

    #[test]
    fn progress_hook_fires_on_schedule_without_changing_the_stream() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&seed_graph(), &exec);
        let cfg = WorkloadConfig {
            ops: 10,
            batch_size: 4,
            universe: 16,
            ..WorkloadConfig::default()
        };
        let baseline = run_workload(&svc, &cfg, &exec).unwrap();
        let svc2 = HcdService::new(&seed_graph(), &exec);
        let mut ticks = Vec::new();
        let observed = run_workload_with(&svc2, &cfg, &exec, 3, |done, s| {
            ticks.push((done, s.queries));
        })
        .unwrap();
        assert_eq!(ticks.iter().map(|&(d, _)| d).collect::<Vec<_>>(), [3, 6, 9]);
        assert_eq!(observed, baseline, "hook must not perturb the workload");
    }
}
