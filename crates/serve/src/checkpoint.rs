//! Atomic snapshot checkpoints of the maintained graph.
//!
//! A checkpoint is the maintained graph serialized in the checksummed
//! v2 binary format (`hcd_graph::io::write_binary`), written to
//! `ckpt-<seq:016x>.bin` inside the durability directory. The batch
//! sequence number lives in the file name so recovery knows exactly
//! which WAL suffix to replay on top; everything else (coreness, the
//! hierarchy) is recomputed from the graph, which the differential
//! suite proves equivalent to the incrementally maintained state.
//!
//! Writes are atomic in the classic way: serialize to
//! `ckpt-<seq>.bin.tmp`, fsync, rename over the final name, fsync the
//! directory. A crash before the rename leaves only a `.tmp` file that
//! discovery ignores; a crash after it leaves a complete, checksummed
//! checkpoint. There is never a moment where a reader can observe a
//! half-written file under the final name.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use hcd_graph::{io as gio, CsrGraph, GraphError};
use hcd_par::{CrashPoint, Executor};

/// File-name prefix of checkpoint files.
pub const CHECKPOINT_PREFIX: &str = "ckpt-";
/// File-name suffix of checkpoint files.
pub const CHECKPOINT_SUFFIX: &str = ".bin";
const TMP_SUFFIX: &str = ".tmp";

/// Why a checkpoint write failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// A real IO or serialization error. The old checkpoint (if any) is
    /// still in place; the WAL still covers every acknowledged batch.
    Io(std::io::Error),
    /// A scheduled [`CrashPoint`] fired (`CkptPreRename` leaves only the
    /// temp file; `CkptPostRename` leaves the new checkpoint fully
    /// published).
    Crashed(CrashPoint),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Crashed(p) => write!(f, "simulated crash at {}", p.name()),
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// `ckpt-<seq:016x>.bin` — zero-padded hex so lexicographic order is
/// sequence order.
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("{CHECKPOINT_PREFIX}{seq:016x}{CHECKPOINT_SUFFIX}")
}

/// Parses the sequence number out of a checkpoint file name (`None`
/// for temp files and unrelated names).
pub fn parse_checkpoint_seq(name: &str) -> Option<u64> {
    let hex = name
        .strip_prefix(CHECKPOINT_PREFIX)?
        .strip_suffix(CHECKPOINT_SUFFIX)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Writes the checkpoint for batch `seq` atomically and returns its
/// final path. Polls the `Ckpt*` crash points around the rename.
pub fn write_checkpoint(
    dir: &Path,
    seq: u64,
    g: &CsrGraph,
    exec: &Executor,
) -> Result<PathBuf, CheckpointError> {
    let _lat = exec.time("serve.ckpt.write");
    let final_path = dir.join(checkpoint_file_name(seq));
    let tmp_path = dir.join(format!("{}{TMP_SUFFIX}", checkpoint_file_name(seq)));
    let mut bytes = Vec::new();
    gio::write_binary(g, &mut bytes).map_err(|e| match e {
        GraphError::Io(io) => CheckpointError::Io(io),
        other => CheckpointError::Io(std::io::Error::other(other.to_string())),
    })?;
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    if exec.crash_point(CrashPoint::CkptPreRename) {
        // Dead before the rename: only the temp file exists; the
        // previous checkpoint is still the newest valid one.
        return Err(CheckpointError::Crashed(CrashPoint::CkptPreRename));
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable (directory metadata). Best-effort:
    // not every platform lets you fsync a directory handle.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    if exec.crash_point(CrashPoint::CkptPostRename) {
        // Dead right after publication: the checkpoint is durable,
        // everything in memory is gone.
        return Err(CheckpointError::Crashed(CrashPoint::CkptPostRename));
    }
    Ok(final_path)
}

/// All checkpoint files in `dir`, sorted ascending by sequence number.
/// Temp files and unrelated names are ignored.
pub fn list_checkpoints(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_checkpoint_seq(name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Loads the newest checkpoint that parses and passes its checksum.
/// Older checkpoints are tried in turn when newer ones are damaged
/// (e.g. doctored on disk — a crash cannot damage a renamed file, but
/// recovery should not be the thing that panics when something else
/// did). Returns the winning `(seq, graph)` plus how many newer files
/// had to be skipped; `None` when no checkpoint is loadable.
pub fn load_newest_valid(dir: &Path) -> std::io::Result<Option<(u64, CsrGraph, usize)>> {
    let mut ckpts = list_checkpoints(dir)?;
    ckpts.reverse();
    let mut skipped = 0usize;
    for (seq, path) in ckpts {
        match gio::read_binary_file(&path) {
            Ok(g) => return Ok(Some((seq, g, skipped))),
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;
    use hcd_par::FaultPlan;

    fn g(edges: &[(u32, u32)]) -> CsrGraph {
        GraphBuilder::new().edges(edges.iter().copied()).build()
    }

    fn tempdir() -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hcd-ckpt-test-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_names_round_trip_and_sort() {
        for seq in [0u64, 1, 255, u64::MAX] {
            assert_eq!(parse_checkpoint_seq(&checkpoint_file_name(seq)), Some(seq));
        }
        assert!(parse_checkpoint_seq("ckpt-0000000000000001.bin.tmp").is_none());
        assert!(parse_checkpoint_seq("wal.log").is_none());
        assert!(parse_checkpoint_seq("ckpt-xyz.bin").is_none());
        // Zero-padded hex: lexicographic == numeric.
        assert!(checkpoint_file_name(9) < checkpoint_file_name(16));
    }

    #[test]
    fn write_then_load_newest() {
        let dir = tempdir();
        let exec = Executor::sequential();
        let g1 = g(&[(0, 1), (1, 2)]);
        let g2 = g(&[(0, 1), (1, 2), (2, 0)]);
        write_checkpoint(&dir, 1, &g1, &exec).unwrap();
        write_checkpoint(&dir, 7, &g2, &exec).unwrap();
        let (seq, loaded, skipped) = load_newest_valid(&dir).unwrap().unwrap();
        assert_eq!((seq, skipped), (7, 0));
        assert_eq!(
            loaded.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        assert_eq!(
            list_checkpoints(&dir)
                .unwrap()
                .into_iter()
                .map(|(s, _)| s)
                .collect::<Vec<_>>(),
            vec![1, 7]
        );
    }

    #[test]
    fn damaged_newest_falls_back_to_older() {
        let dir = tempdir();
        let exec = Executor::sequential();
        let g1 = g(&[(0, 1)]);
        let g2 = g(&[(0, 1), (1, 2)]);
        write_checkpoint(&dir, 1, &g1, &exec).unwrap();
        let newest = write_checkpoint(&dir, 2, &g2, &exec).unwrap();
        // Flip a payload byte: the v2 checksum rejects the file.
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let (seq, loaded, skipped) = load_newest_valid(&dir).unwrap().unwrap();
        assert_eq!((seq, skipped), (1, 1));
        assert_eq!(loaded.num_edges(), 1);
    }

    #[test]
    fn pre_rename_crash_leaves_only_the_temp_file() {
        let dir = tempdir();
        let exec = Executor::sequential();
        write_checkpoint(&dir, 1, &g(&[(0, 1)]), &exec).unwrap();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::CkptPreRename, 0));
        let err = write_checkpoint(&dir, 2, &g(&[(0, 1), (1, 2)]), &exec).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Crashed(CrashPoint::CkptPreRename)
        ));
        exec.clear_fault_plan();
        // Discovery ignores the orphaned temp file and serves seq 1.
        let (seq, _, _) = load_newest_valid(&dir).unwrap().unwrap();
        assert_eq!(seq, 1);
        assert!(dir
            .join(format!("{}.tmp", checkpoint_file_name(2)))
            .exists());
    }

    #[test]
    fn post_rename_crash_still_publishes_the_checkpoint() {
        let dir = tempdir();
        let exec = Executor::sequential();
        write_checkpoint(&dir, 1, &g(&[(0, 1)]), &exec).unwrap();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::CkptPostRename, 0));
        let err = write_checkpoint(&dir, 2, &g(&[(0, 1), (1, 2)]), &exec).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Crashed(CrashPoint::CkptPostRename)
        ));
        exec.clear_fault_plan();
        let (seq, loaded, _) = load_newest_valid(&dir).unwrap().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(loaded.num_edges(), 2);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = tempdir();
        assert!(load_newest_valid(&dir).unwrap().is_none());
    }
}
