//! Append-only write-ahead log for update batches.
//!
//! Every acknowledged [`EdgeUpdate`](hcd_dynamic::EdgeUpdate) batch is
//! appended here *before* it is applied to the maintained
//! [`DynamicCore`](hcd_dynamic::DynamicCore), so a crash between the
//! append and the epoch swap loses no acknowledged work: recovery
//! replays the log suffix on top of the newest checkpoint.
//!
//! # Record format
//!
//! The log is a flat sequence of length-prefixed, checksummed frames:
//!
//! ```text
//! +----------+----------+-------------------------------+
//! | len: u32 | crc: u32 | payload (len bytes)           |
//! +----------+----------+-------------------------------+
//! payload := seq: u64 | count: u32 | count * update
//! update  := tag: u8 (0 = insert, 1 = remove) | u: u32 | v: u32
//! ```
//!
//! All integers are little-endian; `crc` is CRC-32 (IEEE) over the
//! payload only. The frame header is deliberately *not* covered by the
//! checksum: a frame whose payload is shorter than `len` promises is a
//! **torn tail** (the classic kill-mid-write shape) and is truncated
//! away on recovery, while a complete frame whose checksum mismatches is
//! **corruption** and is a hard error. A corrupted length field is
//! indistinguishable from a torn write and is classified as a torn tail
//! — the safe direction, since neither ever admits bad data.
//!
//! # Crash points
//!
//! [`WalWriter::append`] polls three [`CrashPoint`]s through the
//! executor so the kill-and-recover harness can die at every IO
//! boundary: before any byte is written (`WalPreAppend`), after a
//! strict prefix of the frame (`WalMidRecord`), and after the full
//! frame but before fsync (`WalPreFsync`, simulated as page-cache loss
//! by rolling the file back to the last fsynced offset). A fired crash
//! poisons the writer — the in-process "dead" state — and every later
//! append fails with [`WalError::Poisoned`].

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use hcd_dynamic::EdgeUpdate;
use hcd_graph::crc32;
use hcd_par::{CrashPoint, Executor};

/// File name of the log inside a durability directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// Bytes of the `len` + `crc` frame header.
pub const FRAME_HEADER_LEN: usize = 8;

const TAG_INSERT: u8 = 0;
const TAG_REMOVE: u8 = 1;
/// Bytes of one encoded update inside a payload.
const UPDATE_LEN: usize = 9;
/// Bytes of the fixed payload prefix (`seq` + `count`).
const PAYLOAD_PREFIX_LEN: usize = 12;

/// When the log is fsynced relative to appends.
///
/// | policy      | acknowledged batches lost on crash            |
/// |-------------|-----------------------------------------------|
/// | `Always`    | none                                          |
/// | `Every(n)`  | up to `n - 1` (the unsynced window)           |
/// | `Never`     | everything since the last checkpoint          |
///
/// "Lost on crash" means lost to simulated page-cache loss
/// ([`CrashPoint::WalPreFsync`]) — appends that completed without a
/// crash are always on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: no acknowledged batch can be lost.
    Always,
    /// fsync once every `n` appends: bounded loss, higher throughput.
    /// `Every(0)` and `Every(1)` behave like `Always`.
    Every(u64),
    /// Never fsync: durability is only as good as the page cache.
    Never,
}

/// Why a WAL operation failed.
#[derive(Debug)]
pub enum WalError {
    /// A real IO error. The writer rolled the file back to the end of
    /// the last complete record (or poisoned itself if even that
    /// failed), so the log never *stays* torn because of an IO error.
    Io(std::io::Error),
    /// A scheduled [`CrashPoint`] fired: the simulated process is dead.
    /// Whatever the crash left on disk (nothing, a torn frame, or
    /// unsynced bytes) stays there for recovery to find.
    Crashed(CrashPoint),
    /// A previous crash or unrecoverable IO error poisoned this writer;
    /// no further appends are accepted.
    Poisoned,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Crashed(p) => write!(f, "simulated crash at {}", p.name()),
            WalError::Poisoned => write!(f, "wal writer poisoned by an earlier crash"),
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Encodes a record payload (`seq`, then the updates).
pub fn encode_payload(seq: u64, updates: &[EdgeUpdate]) -> Vec<u8> {
    assert!(
        updates.len() <= u32::MAX as usize,
        "update batch too large for one WAL record"
    );
    let mut out = Vec::with_capacity(PAYLOAD_PREFIX_LEN + updates.len() * UPDATE_LEN);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(updates.len() as u32).to_le_bytes());
    for up in updates {
        let (tag, u, v) = match *up {
            EdgeUpdate::Insert(u, v) => (TAG_INSERT, u, v),
            EdgeUpdate::Remove(u, v) => (TAG_REMOVE, u, v),
        };
        out.push(tag);
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encodes a complete frame: `len` + `crc` header followed by the
/// payload of [`encode_payload`].
pub fn encode_record(seq: u64, updates: &[EdgeUpdate]) -> Vec<u8> {
    let payload = encode_payload(seq, updates);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a record payload. `None` when the payload is structurally
/// malformed (bad tag, count disagreeing with the byte length) — which,
/// behind a valid checksum, means a writer bug or deliberate doctoring,
/// never a torn write.
pub fn decode_payload(payload: &[u8]) -> Option<(u64, Vec<EdgeUpdate>)> {
    if payload.len() < PAYLOAD_PREFIX_LEN {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let count = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    if payload.len() != PAYLOAD_PREFIX_LEN + count * UPDATE_LEN {
        return None;
    }
    let mut updates = Vec::with_capacity(count);
    let mut off = PAYLOAD_PREFIX_LEN;
    for _ in 0..count {
        let tag = payload[off];
        let u = u32::from_le_bytes(payload[off + 1..off + 5].try_into().unwrap());
        let v = u32::from_le_bytes(payload[off + 5..off + 9].try_into().unwrap());
        updates.push(match tag {
            TAG_INSERT => EdgeUpdate::Insert(u, v),
            TAG_REMOVE => EdgeUpdate::Remove(u, v),
            _ => return None,
        });
        off += UPDATE_LEN;
    }
    Some((seq, updates))
}

/// One decoded record plus where its frame ends in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The batch sequence number persisted with the record.
    pub seq: u64,
    /// The batch itself, in application order.
    pub updates: Vec<EdgeUpdate>,
    /// Byte offset one past this record's frame — the log is valid up
    /// to here if this is the last record.
    pub end_offset: u64,
}

/// How the log ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailStatus {
    /// The log ends exactly at a frame boundary.
    Clean,
    /// The log ends in a partial frame — the kill-mid-write shape.
    /// Recovery truncates to `valid_len` and keeps going.
    TornTail {
        /// End of the last complete, valid record.
        valid_len: u64,
        /// Bytes of torn garbage after it.
        torn_bytes: u64,
    },
    /// A complete frame failed its checksum or decoded to garbage.
    /// This is damage, not a torn write; recovery refuses the log.
    Corrupt {
        /// Offset of the offending frame.
        offset: u64,
        /// Human-readable classification.
        reason: String,
    },
}

/// Everything a scan of the log found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// All complete, checksum-valid records, in log order.
    pub records: Vec<WalRecord>,
    /// How the log ends after the last valid record.
    pub tail: TailStatus,
}

impl WalScan {
    /// End of the last complete, valid record (0 for an empty or
    /// immediately-torn log).
    pub fn valid_len(&self) -> u64 {
        self.records.last().map_or(0, |r| r.end_offset)
    }
}

/// Scans a full log image. Never fails: damage is reported through
/// [`TailStatus`], and the returned records are always the longest
/// valid prefix of the log.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut off = 0usize;
    let tail = loop {
        let rem = bytes.len() - off;
        if rem == 0 {
            break TailStatus::Clean;
        }
        if rem < FRAME_HEADER_LEN {
            break TailStatus::TornTail {
                valid_len: off as u64,
                torn_bytes: rem as u64,
            };
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if rem - FRAME_HEADER_LEN < len {
            // Shorter payload than the header promises: a torn write,
            // or a corrupted length field masquerading as one. Both are
            // handled by truncating — never by trusting the bytes.
            break TailStatus::TornTail {
                valid_len: off as u64,
                torn_bytes: rem as u64,
            };
        }
        let payload = &bytes[off + FRAME_HEADER_LEN..off + FRAME_HEADER_LEN + len];
        if crc32(payload) != crc {
            break TailStatus::Corrupt {
                offset: off as u64,
                reason: "record checksum mismatch".into(),
            };
        }
        let Some((seq, updates)) = decode_payload(payload) else {
            break TailStatus::Corrupt {
                offset: off as u64,
                reason: "checksum-valid record failed to decode".into(),
            };
        };
        off += FRAME_HEADER_LEN + len;
        records.push(WalRecord {
            seq,
            updates,
            end_offset: off as u64,
        });
    };
    WalScan { records, tail }
}

/// Scans a log file ([`scan_wal`] over its full contents). A missing
/// file scans as empty-and-clean: a durability directory whose WAL was
/// never created simply has nothing to replay.
pub fn scan_wal_file<P: AsRef<Path>>(path: P) -> std::io::Result<WalScan> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(scan_wal(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(scan_wal(&[])),
        Err(e) => Err(e),
    }
}

/// The appending side of the log. One writer per durability directory,
/// serialized externally (the service holds it under its writer lock).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// End of the last fully appended record.
    len: u64,
    /// Length covered by the last fsync; page-cache-loss simulation
    /// rolls the file back to here.
    synced_len: u64,
    unsynced_appends: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path` and starts it empty.
    pub fn create<P: AsRef<Path>>(path: P, policy: FsyncPolicy) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(WalWriter {
            file,
            path: path.as_ref().to_path_buf(),
            policy,
            len: 0,
            synced_len: 0,
            unsynced_appends: 0,
            poisoned: false,
        })
    }

    /// Opens an existing log whose valid length is already known (the
    /// recovery path: scan first, truncate any torn tail, then reopen
    /// for appending). The on-disk prefix counts as synced — it
    /// survived the crash by definition.
    pub fn open_at<P: AsRef<Path>>(
        path: P,
        policy: FsyncPolicy,
        valid_len: u64,
    ) -> std::io::Result<Self> {
        // Not `truncate(true)`: the valid prefix must survive the open;
        // `set_len` below cuts exactly the torn suffix.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            path: path.as_ref().to_path_buf(),
            policy,
            len: valid_len,
            synced_len: valid_len,
            unsynced_appends: 0,
            poisoned: false,
        })
    }

    /// The log's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// End of the last fully appended record.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether a crash or unrecoverable IO error killed this writer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends one batch record and (per policy) fsyncs it. Returns the
    /// frame size in bytes on success. Polls the `Wal*` crash points —
    /// see the module docs for what each one leaves on disk.
    pub fn append(
        &mut self,
        seq: u64,
        updates: &[EdgeUpdate],
        exec: &Executor,
    ) -> Result<u64, WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let _lat = exec.time("serve.wal.append");
        let frame = encode_record(seq, updates);

        if exec.crash_point(CrashPoint::WalPreAppend) {
            self.poisoned = true;
            return Err(WalError::Crashed(CrashPoint::WalPreAppend));
        }
        if exec.crash_point(CrashPoint::WalMidRecord) {
            // Die after a strict prefix of the frame, exactly as a
            // killed process would: header complete, payload torn.
            let torn = FRAME_HEADER_LEN + (frame.len() - FRAME_HEADER_LEN) / 2;
            let _ = self.file.write_all(&frame[..torn]);
            self.poisoned = true;
            return Err(WalError::Crashed(CrashPoint::WalMidRecord));
        }
        if let Err(e) = self.file.write_all(&frame) {
            // Real IO error: roll back to the last complete record so a
            // half-written frame never lingers; poison only if even the
            // rollback fails.
            if self.file.set_len(self.len).is_err() || self.file.seek(SeekFrom::End(0)).is_err() {
                self.poisoned = true;
            }
            return Err(WalError::Io(e));
        }
        if exec.crash_point(CrashPoint::WalPreFsync) {
            // The bytes reached the file but were never fsynced; the
            // simulated machine loses its page cache with the process.
            let _ = self.file.set_len(self.synced_len);
            self.poisoned = true;
            return Err(WalError::Crashed(CrashPoint::WalPreFsync));
        }
        self.len += frame.len() as u64;
        self.unsynced_appends += 1;
        let sync_now = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Every(n) => self.unsynced_appends >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if sync_now {
            let synced = {
                let _lat = exec.time("serve.wal.fsync");
                self.file.sync_data()
            };
            if let Err(e) = synced {
                // After a failed fsync the durable state is unknowable;
                // refuse all further work on this writer.
                self.poisoned = true;
                return Err(WalError::Io(e));
            }
            self.synced_len = self.len;
            self.unsynced_appends = 0;
        }
        Ok(frame.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_par::FaultPlan;

    fn batch(n: u32) -> Vec<EdgeUpdate> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    EdgeUpdate::Remove(i, i + 1)
                } else {
                    EdgeUpdate::Insert(i, i + 2)
                }
            })
            .collect()
    }

    #[test]
    fn payload_round_trips() {
        for n in [0u32, 1, 7] {
            let updates = batch(n);
            let payload = encode_payload(9 + n as u64, &updates);
            assert_eq!(
                decode_payload(&payload),
                Some((9 + n as u64, updates.clone()))
            );
        }
        // Structural damage is rejected, not misread.
        let payload = encode_payload(1, &batch(2));
        assert!(decode_payload(&payload[..payload.len() - 1]).is_none());
        let mut bad_tag = payload.clone();
        bad_tag[PAYLOAD_PREFIX_LEN] = 7;
        assert!(decode_payload(&bad_tag).is_none());
    }

    #[test]
    fn append_then_scan_is_clean() {
        let dir = tempdir();
        let path = dir.join(WAL_FILE_NAME);
        let exec = Executor::sequential();
        let mut w = WalWriter::create(&path, FsyncPolicy::Always).unwrap();
        for seq in 1..=3u64 {
            let bytes = w.append(seq, &batch(seq as u32), &exec).unwrap();
            assert!(bytes >= (FRAME_HEADER_LEN + PAYLOAD_PREFIX_LEN) as u64);
        }
        let scan = scan_wal_file(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.records.len(), 3);
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.updates, batch(r.seq as u32));
        }
        assert_eq!(scan.valid_len(), w.len());
    }

    #[test]
    fn missing_file_scans_empty() {
        let dir = tempdir();
        let scan = scan_wal_file(dir.join("nope.log")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.valid_len(), 0);
    }

    #[test]
    fn every_truncation_point_is_a_torn_tail_with_the_valid_prefix() {
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for seq in 1..=3u64 {
            log.extend_from_slice(&encode_record(seq, &batch(seq as u32)));
            boundaries.push(log.len());
        }
        for cut in 0..=log.len() {
            let scan = scan_wal(&log[..cut]);
            let full = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(scan.records.len(), full, "cut {cut}");
            assert_eq!(scan.valid_len() as usize, boundaries[full], "cut {cut}");
            if cut == boundaries[full] {
                assert_eq!(scan.tail, TailStatus::Clean, "cut {cut}");
            } else {
                assert_eq!(
                    scan.tail,
                    TailStatus::TornTail {
                        valid_len: boundaries[full] as u64,
                        torn_bytes: (cut - boundaries[full]) as u64,
                    },
                    "cut {cut}"
                );
            }
        }
    }

    #[test]
    fn flipped_byte_in_a_complete_frame_is_corruption() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(1, &batch(2)));
        let first_end = log.len();
        log.extend_from_slice(&encode_record(2, &batch(3)));
        // Flip one payload byte of the second record.
        log[first_end + FRAME_HEADER_LEN + 3] ^= 0x40;
        let scan = scan_wal(&log);
        assert_eq!(scan.records.len(), 1, "first record survives");
        assert!(
            matches!(scan.tail, TailStatus::Corrupt { offset, .. } if offset == first_end as u64),
            "{:?}",
            scan.tail
        );
        // Flip a CRC byte instead: same classification.
        let mut log2 = encode_record(1, &batch(2));
        log2[5] ^= 0x01;
        let scan2 = scan_wal(&log2);
        assert!(scan2.records.is_empty());
        assert!(matches!(scan2.tail, TailStatus::Corrupt { offset: 0, .. }));
    }

    #[test]
    fn mid_record_crash_leaves_a_torn_recoverable_tail() {
        let dir = tempdir();
        let path = dir.join(WAL_FILE_NAME);
        let exec = Executor::sequential();
        let mut w = WalWriter::create(&path, FsyncPolicy::Always).unwrap();
        w.append(1, &batch(4), &exec).unwrap();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalMidRecord, 0));
        let err = w.append(2, &batch(4), &exec).unwrap_err();
        assert!(matches!(err, WalError::Crashed(CrashPoint::WalMidRecord)));
        assert!(w.is_poisoned());
        assert!(matches!(
            w.append(3, &batch(1), &exec).unwrap_err(),
            WalError::Poisoned
        ));
        exec.clear_fault_plan();
        let scan = scan_wal_file(&path).unwrap();
        assert_eq!(scan.records.len(), 1, "only the acknowledged record");
        assert!(
            matches!(scan.tail, TailStatus::TornTail { valid_len, torn_bytes }
                if valid_len == scan.valid_len() && torn_bytes > 0),
            "{:?}",
            scan.tail
        );
    }

    #[test]
    fn pre_fsync_crash_loses_exactly_the_unsynced_suffix() {
        let dir = tempdir();
        let path = dir.join(WAL_FILE_NAME);
        let exec = Executor::sequential();
        // Never fsync: everything is page cache, so a pre-fsync crash
        // rolls the whole log away.
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        w.append(1, &batch(2), &exec).unwrap();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalPreFsync, 0));
        let err = w.append(2, &batch(2), &exec).unwrap_err();
        assert!(matches!(err, WalError::Crashed(CrashPoint::WalPreFsync)));
        exec.clear_fault_plan();
        let scan = scan_wal_file(&path).unwrap();
        assert!(scan.records.is_empty(), "{scan:?}");
        assert_eq!(scan.tail, TailStatus::Clean);

        // Always fsync: only the in-flight record is lost.
        let path2 = dir.join("wal2.log");
        let mut w2 = WalWriter::create(&path2, FsyncPolicy::Always).unwrap();
        w2.append(1, &batch(2), &exec).unwrap();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalPreFsync, 0));
        w2.append(2, &batch(2), &exec).unwrap_err();
        exec.clear_fault_plan();
        let scan2 = scan_wal_file(&path2).unwrap();
        assert_eq!(scan2.records.len(), 1);
        assert_eq!(scan2.tail, TailStatus::Clean);
    }

    #[test]
    fn pre_append_crash_writes_nothing() {
        let dir = tempdir();
        let path = dir.join(WAL_FILE_NAME);
        let exec = Executor::sequential();
        let mut w = WalWriter::create(&path, FsyncPolicy::Always).unwrap();
        w.append(1, &batch(1), &exec).unwrap();
        let before = w.len();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalPreAppend, 0));
        w.append(2, &batch(1), &exec).unwrap_err();
        exec.clear_fault_plan();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
    }

    #[test]
    fn open_at_truncates_the_torn_tail_and_resumes() {
        let dir = tempdir();
        let path = dir.join(WAL_FILE_NAME);
        let exec = Executor::sequential();
        let mut w = WalWriter::create(&path, FsyncPolicy::Always).unwrap();
        w.append(1, &batch(2), &exec).unwrap();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalMidRecord, 0));
        w.append(2, &batch(2), &exec).unwrap_err();
        exec.clear_fault_plan();
        drop(w);

        let scan = scan_wal_file(&path).unwrap();
        let valid = match scan.tail {
            TailStatus::TornTail { valid_len, .. } => valid_len,
            ref t => panic!("expected torn tail, got {t:?}"),
        };
        let mut w = WalWriter::open_at(&path, FsyncPolicy::Always, valid).unwrap();
        w.append(2, &batch(5), &exec).unwrap();
        let scan = scan_wal_file(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(scan.records[1].updates, batch(5));
    }

    /// Unique-per-test temp dir under the target-adjacent tmp root.
    fn tempdir() -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hcd-wal-test-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
