//! Property-based tests for the WAL frame format: arbitrary batches
//! must round-trip losslessly, and arbitrary damage (suffix truncation,
//! single-byte flips) must recover exactly the longest valid prefix —
//! never a wrong or altered record.

use proptest::prelude::*;

use hcd_dynamic::EdgeUpdate;

use crate::wal::{encode_record, scan_wal, TailStatus, FRAME_HEADER_LEN};

/// Strategy: one arbitrary update batch over a small vertex universe.
fn arb_batch(max_len: usize) -> impl Strategy<Value = Vec<EdgeUpdate>> {
    prop::collection::vec((0..64u32, 0..64u32, any::<bool>()), 0..max_len).prop_map(|raw| {
        raw.into_iter()
            .map(|(u, v, insert)| {
                if insert {
                    EdgeUpdate::Insert(u, v)
                } else {
                    EdgeUpdate::Remove(u, v)
                }
            })
            .collect()
    })
}

/// Strategy: a whole log as a batch sequence (records get seqs `1..`).
fn arb_batches(
    min_batches: usize,
    max_batches: usize,
) -> impl Strategy<Value = Vec<Vec<EdgeUpdate>>> {
    prop::collection::vec(arb_batch(10), min_batches..max_batches)
}

/// Concatenated frames plus the frame-boundary offsets
/// (`boundaries[i]` = start of record `i`, last entry = total length).
fn build_log(batches: &[Vec<EdgeUpdate>]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut boundaries = vec![0usize];
    for (i, updates) in batches.iter().enumerate() {
        log.extend_from_slice(&encode_record(i as u64 + 1, updates));
        boundaries.push(log.len());
    }
    (log, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_batches_round_trip_through_the_log(batches in arb_batches(0, 8)) {
        let (log, boundaries) = build_log(&batches);
        let scan = scan_wal(&log);
        prop_assert_eq!(&scan.tail, &TailStatus::Clean);
        prop_assert_eq!(scan.records.len(), batches.len());
        for (i, r) in scan.records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.updates, &batches[i]);
            prop_assert_eq!(r.end_offset as usize, boundaries[i + 1]);
        }
        prop_assert_eq!(scan.valid_len() as usize, log.len());
    }

    #[test]
    fn truncating_any_suffix_recovers_exactly_the_longest_valid_prefix(
        batches in arb_batches(1, 7),
        cut_sel in any::<u64>(),
    ) {
        let (log, boundaries) = build_log(&batches);
        let cut = (cut_sel % (log.len() as u64 + 1)) as usize;
        let scan = scan_wal(&log[..cut]);
        // The records that survive are exactly the ones whose frames lie
        // fully inside the kept bytes — nothing more, nothing altered.
        let full = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(scan.records.len(), full);
        for (i, r) in scan.records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.updates, &batches[i]);
        }
        prop_assert_eq!(scan.valid_len() as usize, boundaries[full]);
        if cut == boundaries[full] {
            prop_assert_eq!(&scan.tail, &TailStatus::Clean);
        } else {
            prop_assert_eq!(
                &scan.tail,
                &TailStatus::TornTail {
                    valid_len: boundaries[full] as u64,
                    torn_bytes: (cut - boundaries[full]) as u64,
                }
            );
        }
    }

    #[test]
    fn flipping_any_byte_never_yields_a_wrong_record(
        batches in arb_batches(1, 7),
        pos_sel in any::<u64>(),
        xor in 1..256u32,
    ) {
        let (mut log, boundaries) = build_log(&batches);
        let pos = (pos_sel % log.len() as u64) as usize;
        log[pos] ^= xor as u8;
        // Which record's frame holds the flipped byte?
        let hit = boundaries.iter().filter(|&&b| b > 0 && b <= pos).count();
        let scan = scan_wal(&log);
        // Everything before the damaged frame survives verbatim;
        // the damaged frame and everything after it never decode.
        prop_assert_eq!(scan.records.len(), hit, "tail: {:?}", scan.tail);
        for (i, r) in scan.records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.updates, &batches[i]);
        }
        // A flip in the length field reads as a torn tail (unverifiable
        // framing); a flip under the checksum reads as corruption. Both
        // stop the scan at the damaged frame — `Clean` is impossible.
        let in_len_field = pos - boundaries[hit] < FRAME_HEADER_LEN / 2;
        match &scan.tail {
            TailStatus::TornTail { valid_len, .. } => {
                prop_assert!(in_len_field, "torn tail from a non-length flip at {pos}");
                prop_assert_eq!(*valid_len as usize, boundaries[hit]);
            }
            TailStatus::Corrupt { offset, .. } => {
                prop_assert_eq!(*offset as usize, boundaries[hit]);
            }
            TailStatus::Clean => prop_assert!(false, "flip at {pos} went unnoticed"),
        }
    }
}
