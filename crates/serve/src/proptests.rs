//! Property-based tests for the WAL frame format: arbitrary batches
//! must round-trip losslessly, and arbitrary damage (suffix truncation,
//! single-byte flips) must recover exactly the longest valid prefix —
//! never a wrong or altered record.

use proptest::prelude::*;

use hcd_dynamic::EdgeUpdate;

use crate::wal::{encode_record, scan_wal, TailStatus, FRAME_HEADER_LEN};

/// Strategy: one arbitrary update batch over a small vertex universe.
fn arb_batch(max_len: usize) -> impl Strategy<Value = Vec<EdgeUpdate>> {
    prop::collection::vec((0..64u32, 0..64u32, any::<bool>()), 0..max_len).prop_map(|raw| {
        raw.into_iter()
            .map(|(u, v, insert)| {
                if insert {
                    EdgeUpdate::Insert(u, v)
                } else {
                    EdgeUpdate::Remove(u, v)
                }
            })
            .collect()
    })
}

/// Strategy: a whole log as a batch sequence (records get seqs `1..`).
fn arb_batches(
    min_batches: usize,
    max_batches: usize,
) -> impl Strategy<Value = Vec<Vec<EdgeUpdate>>> {
    prop::collection::vec(arb_batch(10), min_batches..max_batches)
}

/// Concatenated frames plus the frame-boundary offsets
/// (`boundaries[i]` = start of record `i`, last entry = total length).
fn build_log(batches: &[Vec<EdgeUpdate>]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut boundaries = vec![0usize];
    for (i, updates) in batches.iter().enumerate() {
        log.extend_from_slice(&encode_record(i as u64 + 1, updates));
        boundaries.push(log.len());
    }
    (log, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_batches_round_trip_through_the_log(batches in arb_batches(0, 8)) {
        let (log, boundaries) = build_log(&batches);
        let scan = scan_wal(&log);
        prop_assert_eq!(&scan.tail, &TailStatus::Clean);
        prop_assert_eq!(scan.records.len(), batches.len());
        for (i, r) in scan.records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.updates, &batches[i]);
            prop_assert_eq!(r.end_offset as usize, boundaries[i + 1]);
        }
        prop_assert_eq!(scan.valid_len() as usize, log.len());
    }

    #[test]
    fn truncating_any_suffix_recovers_exactly_the_longest_valid_prefix(
        batches in arb_batches(1, 7),
        cut_sel in any::<u64>(),
    ) {
        let (log, boundaries) = build_log(&batches);
        let cut = (cut_sel % (log.len() as u64 + 1)) as usize;
        let scan = scan_wal(&log[..cut]);
        // The records that survive are exactly the ones whose frames lie
        // fully inside the kept bytes — nothing more, nothing altered.
        let full = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(scan.records.len(), full);
        for (i, r) in scan.records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.updates, &batches[i]);
        }
        prop_assert_eq!(scan.valid_len() as usize, boundaries[full]);
        if cut == boundaries[full] {
            prop_assert_eq!(&scan.tail, &TailStatus::Clean);
        } else {
            prop_assert_eq!(
                &scan.tail,
                &TailStatus::TornTail {
                    valid_len: boundaries[full] as u64,
                    torn_bytes: (cut - boundaries[full]) as u64,
                }
            );
        }
    }

    #[test]
    fn flipping_any_byte_never_yields_a_wrong_record(
        batches in arb_batches(1, 7),
        pos_sel in any::<u64>(),
        xor in 1..256u32,
    ) {
        let (mut log, boundaries) = build_log(&batches);
        let pos = (pos_sel % log.len() as u64) as usize;
        log[pos] ^= xor as u8;
        // Which record's frame holds the flipped byte?
        let hit = boundaries.iter().filter(|&&b| b > 0 && b <= pos).count();
        let scan = scan_wal(&log);
        // Everything before the damaged frame survives verbatim;
        // the damaged frame and everything after it never decode.
        prop_assert_eq!(scan.records.len(), hit, "tail: {:?}", scan.tail);
        for (i, r) in scan.records.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
            prop_assert_eq!(&r.updates, &batches[i]);
        }
        // A flip in the length field reads as a torn tail (unverifiable
        // framing); a flip under the checksum reads as corruption. Both
        // stop the scan at the damaged frame — `Clean` is impossible.
        let in_len_field = pos - boundaries[hit] < FRAME_HEADER_LEN / 2;
        match &scan.tail {
            TailStatus::TornTail { valid_len, .. } => {
                prop_assert!(in_len_field, "torn tail from a non-length flip at {pos}");
                prop_assert_eq!(*valid_len as usize, boundaries[hit]);
            }
            TailStatus::Corrupt { offset, .. } => {
                prop_assert_eq!(*offset as usize, boundaries[hit]);
            }
            TailStatus::Clean => prop_assert!(false, "flip at {pos} went unnoticed"),
        }
    }
}

// --- admission-control properties -------------------------------------
//
// Shedding must be boring: a pure function of the config under a
// sequential executor (so CI can assert exact shed counts), and a
// rejected request must leave zero footprint — no WAL append, no query
// counter, no queue mutation — because admission runs before any work.

mod admission_props {
    use super::*;
    use crate::admission::{AdmissionConfig, Rejected};
    use crate::ingress::IngressQueue;
    use crate::openloop::{run_open_loop, OpenLoopConfig};
    use crate::service::{DurabilityConfig, HcdService, Query};
    use hcd_graph::GraphBuilder;
    use hcd_par::Executor;
    use std::collections::BTreeMap;

    fn seed_graph() -> hcd_graph::CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
    }

    fn counter_map(exec: &Executor) -> BTreeMap<&'static str, u64> {
        exec.take_metrics()
            .counters
            .iter()
            .map(|c| (c.name, c.value))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // The same open-loop config, run twice from scratch under
        // sequential executors, makes identical shed decisions with
        // identical accounting and identical counters — no drift.
        // (Deadlines are restricted to the two deterministic regimes,
        // `None` and already-expired `Some(0)`; anything in between
        // races the wall clock by design.)
        #[test]
        fn shed_decisions_are_deterministic_under_seq(
            seed in any::<u64>(),
            offered_qps in 1..50_000u64,
            ticks in 1..60u64,
            drain_batch in 1..16usize,
            watermark in 1..64usize,
            zero_deadline in any::<bool>(),
            hot in 0..101u32,
        ) {
            let cfg = OpenLoopConfig {
                seed,
                offered_qps,
                ticks,
                drain_batch,
                watermark,
                deadline_ms: if zero_deadline { Some(0) } else { None },
                update_every: 7,
                universe: 16,
                hot_fraction: f64::from(hot) / 100.0,
            };
            let mut outcomes = Vec::new();
            for _ in 0..2 {
                let exec = Executor::sequential().with_metrics();
                let svc = HcdService::new(&seed_graph(), &exec);
                let ingress = IngressQueue::new(AdmissionConfig {
                    watermark,
                    default_deadline: None,
                });
                let s = run_open_loop(&svc, &ingress, &cfg, &exec).unwrap();
                outcomes.push((s, counter_map(&exec)));
            }
            prop_assert_eq!(&outcomes[0], &outcomes[1]);
            let (s, _) = &outcomes[0];
            // Every offered arrival is accounted for exactly once.
            prop_assert_eq!(s.offered, s.answered + s.shed());
            prop_assert!(s.max_depth <= watermark);
            if zero_deadline {
                prop_assert_eq!(s.answered, 0);
                prop_assert!(s.saturated());
                prop_assert_eq!(s.shed_fraction(), 1.0);
            }
        }

        // Overflowing a full queue is side-effect free: the rejection
        // is typed, the WAL does not grow, no query or enqueue counter
        // moves, and the queue itself is untouched.
        #[test]
        fn overload_rejection_is_typed_and_side_effect_free(
            extra in 1..32usize,
            watermark in 1..16usize,
            vsel in any::<u32>(),
        ) {
            let exec = Executor::sequential().with_metrics();
            let dir = std::env::temp_dir().join(format!(
                "hcd-admission-prop-{}-{}",
                std::process::id(),
                vsel
            ));
            std::fs::remove_dir_all(&dir).ok();
            let svc = HcdService::try_new_durable(
                &seed_graph(),
                &dir,
                DurabilityConfig::default(),
                &exec,
            )
            .unwrap();
            let _ = &svc; // admission must refuse before the service is touched
            let wal = dir.join(crate::WAL_FILE_NAME);
            let wal_len = std::fs::metadata(&wal).unwrap().len();
            let q = IngressQueue::new(AdmissionConfig {
                watermark,
                default_deadline: None,
            });
            for _ in 0..watermark {
                q.try_enqueue(Query::InKCore(0, 1), None, &exec).unwrap();
            }
            exec.take_metrics(); // isolate the overflow's footprint
            for i in 0..extra {
                let v = vsel.wrapping_add(i as u32) % 8;
                let err = q
                    .try_enqueue(Query::CoreContaining(v, 1), None, &exec)
                    .unwrap_err();
                prop_assert_eq!(err, Rejected::Overloaded { depth: watermark, watermark });
            }
            let counters = counter_map(&exec);
            prop_assert_eq!(
                counters.get("serve.shed.overloaded").copied(),
                Some(extra as u64)
            );
            prop_assert!(!counters.contains_key("serve.queries"));
            prop_assert!(!counters.contains_key("serve.ingress.enqueued"));
            prop_assert!(!counters.contains_key("serve.wal_appends"));
            prop_assert_eq!(std::fs::metadata(&wal).unwrap().len(), wal_len);
            prop_assert_eq!(q.depth(), watermark);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
