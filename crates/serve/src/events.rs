//! Structured JSONL writer event log.
//!
//! The histogram layer (`hcd_par::hist`) answers "how slow"; this log
//! answers "what happened, in order". Every write-path decision the
//! service makes — batch applied, snapshot published, no-op skipped,
//! checkpoint written, recovery performed, fault kept the old snapshot
//! serving — is appended as one self-describing JSON object per line,
//! so a crashed or misbehaving run can be reconstructed record by
//! record (and diffed against the WAL, which carries the same `seq`).
//!
//! Schema ([`EVENTS_SCHEMA`] = `hcd-events-v1`): every line carries
//!
//! ```json
//! {"schema": "hcd-events-v1", "t_us": 1234, "kind": "...", ...}
//! ```
//!
//! where `t_us` is microseconds since the log was opened (monotonic
//! clock) and `kind` is one of:
//!
//! | kind                      | extra fields                                          |
//! |---------------------------|-------------------------------------------------------|
//! | `batch-applied`           | `seq`, `generation`, `applied`, `skipped`, `affected`, `duration_ns` |
//! | `published`               | `seq`, `generation`, `affected`, `duration_ns`        |
//! | `no-op`                   | `seq`, `generation`, `skipped`                        |
//! | `checkpoint`              | `seq`, `generation`, `duration_ns`                    |
//! | `recovery`                | `checkpoint_seq`, `final_seq`, `replayed`, `bytes_scanned`, `checkpoints_skipped`, `truncated_bytes`, `duration_ns` |
//! | `fault-kept-old-snapshot` | `seq`, `generation`, `error`, `duration_ns`           |
//!
//! `generation` is the published snapshot generation *after* the event
//! (for `fault-kept-old-snapshot` and `no-op`, the generation that
//! keeps serving); `affected` is the number of vertices whose coreness
//! the batch changed plus the forest region rebuilt around them —
//! i.e. the size of the region `Hcd::repair` touched; `seq` is the
//! WAL/acknowledgement sequence number of the triggering batch.
//!
//! Lines are flushed eagerly (one `write` + `flush` per event, at most
//! a few per update batch), so a kill-test harness sees every event
//! the writer acknowledged.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Instant;

use hcd_par::trace::escape_json;
use parking_lot::Mutex;

use crate::recover::RecoveryReport;

/// Version tag carried on every event line.
pub const EVENTS_SCHEMA: &str = "hcd-events-v1";

struct Sink {
    out: BufWriter<Box<dyn Write + Send>>,
    lines: u64,
}

/// An append-only JSONL event log (see module docs). Cheap when absent:
/// the service holds an `Option<EventLog>` and skips all formatting
/// when it is `None`.
pub struct EventLog {
    sink: Mutex<Sink>,
    opened: Instant,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("lines", &self.lines_written())
            .finish()
    }
}

impl EventLog {
    /// Creates (truncating) the log file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<EventLog> {
        Ok(Self::to_writer(Box::new(File::create(path)?)))
    }

    /// Wraps an arbitrary writer (tests use `Vec<u8>` via a pipe or
    /// tempfile; the CLI uses a file).
    pub fn to_writer(w: Box<dyn Write + Send>) -> EventLog {
        EventLog {
            sink: Mutex::new(Sink {
                out: BufWriter::new(w),
                lines: 0,
            }),
            opened: Instant::now(),
        }
    }

    /// Number of event lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.sink.lock().lines
    }

    fn emit(&self, kind: &str, fields: &str) {
        let t_us = self.opened.elapsed().as_micros();
        let mut sink = self.sink.lock();
        let line = format!(
            "{{\"schema\": \"{EVENTS_SCHEMA}\", \"t_us\": {t_us}, \"kind\": \"{kind}\"{fields}}}\n"
        );
        // Event-log IO errors must never fail the write path they
        // observe; a broken log is reported by the missing tail, not by
        // poisoning the service.
        let _ = sink.out.write_all(line.as_bytes());
        let _ = sink.out.flush();
        sink.lines += 1;
    }

    /// A batch of edge updates was applied to the writer state.
    pub fn batch_applied(
        &self,
        seq: u64,
        generation: u64,
        applied: u64,
        skipped: u64,
        affected: u64,
        duration_ns: u64,
    ) {
        self.emit(
            "batch-applied",
            &format!(
                ", \"seq\": {seq}, \"generation\": {generation}, \"applied\": {applied}, \
                 \"skipped\": {skipped}, \"affected\": {affected}, \"duration_ns\": {duration_ns}"
            ),
        );
    }

    /// A new snapshot generation became visible to readers.
    pub fn published(&self, seq: u64, generation: u64, affected: u64, duration_ns: u64) {
        self.emit(
            "published",
            &format!(
                ", \"seq\": {seq}, \"generation\": {generation}, \"affected\": {affected}, \
                 \"duration_ns\": {duration_ns}"
            ),
        );
    }

    /// An update batch changed nothing; no generation was published and
    /// nothing was logged to the WAL.
    pub fn noop(&self, seq: u64, generation: u64, skipped: u64) {
        self.emit(
            "no-op",
            &format!(", \"seq\": {seq}, \"generation\": {generation}, \"skipped\": {skipped}"),
        );
    }

    /// A snapshot checkpoint was written (or attempted — a crash-point
    /// failure is reported as `fault-kept-old-snapshot` instead).
    pub fn checkpoint(&self, seq: u64, generation: u64, duration_ns: u64) {
        self.emit(
            "checkpoint",
            &format!(
                ", \"seq\": {seq}, \"generation\": {generation}, \"duration_ns\": {duration_ns}"
            ),
        );
    }

    /// A write-path failure left the previous snapshot serving.
    pub fn fault_kept_old_snapshot(
        &self,
        seq: u64,
        generation: u64,
        error: &str,
        duration_ns: u64,
    ) {
        self.emit(
            "fault-kept-old-snapshot",
            &format!(
                ", \"seq\": {seq}, \"generation\": {generation}, \"error\": \"{}\", \
                 \"duration_ns\": {duration_ns}",
                escape_json(error)
            ),
        );
    }

    /// A durable service recovered its state from disk.
    pub fn recovery(&self, report: &RecoveryReport) {
        self.emit(
            "recovery",
            &format!(
                ", \"checkpoint_seq\": {}, \"final_seq\": {}, \"replayed\": {}, \
                 \"bytes_scanned\": {}, \"checkpoints_skipped\": {}, \"truncated_bytes\": {}, \
                 \"duration_ns\": {}",
                report.checkpoint_seq,
                report.final_seq,
                report.replayed,
                report.bytes_scanned,
                report.checkpoints_skipped,
                report.truncated_bytes,
                report.wall_ns,
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_back(path: &std::path::Path) -> Vec<String> {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hcd_events_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn every_line_is_schema_tagged_json() {
        let path = tmp("tagged.jsonl");
        let log = EventLog::create(&path).unwrap();
        log.batch_applied(1, 1, 10, 2, 7, 12345);
        log.published(1, 1, 7, 23456);
        log.noop(1, 1, 8);
        log.checkpoint(1, 1, 999);
        log.fault_kept_old_snapshot(2, 1, "rebuild \"panicked\"", 5);
        assert_eq!(log.lines_written(), 5);
        let lines = read_back(&path);
        assert_eq!(lines.len(), 5);
        for line in &lines {
            let doc = hcd_par::diff::Json::parse(line).expect("valid JSON line");
            assert_eq!(
                doc.get("schema").and_then(hcd_par::diff::Json::as_str),
                Some(EVENTS_SCHEMA)
            );
            assert!(doc
                .get("t_us")
                .and_then(hcd_par::diff::Json::as_f64)
                .is_some());
            assert!(doc
                .get("kind")
                .and_then(hcd_par::diff::Json::as_str)
                .is_some());
        }
        let fault = hcd_par::diff::Json::parse(&lines[4]).unwrap();
        assert_eq!(
            fault.get("error").and_then(hcd_par::diff::Json::as_str),
            Some("rebuild \"panicked\"")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_event_carries_the_report() {
        let path = tmp("recovery.jsonl");
        let log = EventLog::create(&path).unwrap();
        log.recovery(&RecoveryReport {
            checkpoint_seq: 3,
            checkpoints_skipped: 1,
            wal_records: 5,
            replayed: 2,
            final_seq: 5,
            truncated_bytes: 10,
            bytes_scanned: 640,
            wall_ns: 1_000_000,
        });
        let lines = read_back(&path);
        let doc = hcd_par::diff::Json::parse(&lines[0]).unwrap();
        assert_eq!(
            doc.get("kind").and_then(hcd_par::diff::Json::as_str),
            Some("recovery")
        );
        assert_eq!(
            doc.get("bytes_scanned")
                .and_then(hcd_par::diff::Json::as_f64),
            Some(640.0)
        );
        assert_eq!(
            doc.get("replayed").and_then(hcd_par::diff::Json::as_f64),
            Some(2.0)
        );
        std::fs::remove_file(&path).ok();
    }
}
