//! Typed admission-control decisions for the ingress path.
//!
//! Shedding happens **before any work starts**: a rejected request has
//! touched no snapshot, appended nothing to the WAL, and ticked no
//! query counter — only its own `serve.shed.*` counter. That makes a
//! shed observable, cheap, and (under a sequential executor with a
//! fixed arrival schedule) fully deterministic, which the admission
//! proptests rely on.

use std::time::Duration;

use hcd_par::Deadline;

/// Why a request was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The ingress queue was at or past its watermark; admitting more
    /// would only grow latency for everyone already queued.
    Overloaded {
        /// Queue depth observed at the decision.
        depth: usize,
        /// The configured shed watermark.
        watermark: usize,
    },
    /// The request's deadline had already expired on arrival (or by
    /// drain time) — answering it would be wasted work by definition.
    DeadlineExceeded,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded { depth, watermark } => {
                write!(
                    f,
                    "overloaded: queue depth {depth} >= watermark {watermark}"
                )
            }
            Rejected::DeadlineExceeded => write!(f, "deadline exceeded before admission"),
        }
    }
}

/// Knobs for the admission layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Enqueue attempts at this queue depth or beyond are shed with
    /// [`Rejected::Overloaded`].
    pub watermark: usize,
    /// Default per-request deadline stamped on enqueues that carry
    /// none (`None` = requests without an explicit deadline never
    /// expire).
    pub default_deadline: Option<Duration>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            watermark: 1024,
            default_deadline: None,
        }
    }
}

impl AdmissionConfig {
    /// The deadline to stamp on a request that supplied `explicit`.
    pub fn deadline_for(&self, explicit: Option<Deadline>) -> Option<Deadline> {
        explicit.or_else(|| self.default_deadline.map(Deadline::from_now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_format_usefully() {
        let o = Rejected::Overloaded {
            depth: 9,
            watermark: 8,
        };
        assert!(o.to_string().contains("depth 9"));
        assert!(Rejected::DeadlineExceeded.to_string().contains("deadline"));
    }

    #[test]
    fn default_deadline_applies_only_without_an_explicit_one() {
        let cfg = AdmissionConfig {
            watermark: 4,
            default_deadline: Some(Duration::from_secs(60)),
        };
        assert!(cfg.deadline_for(None).is_some());
        let explicit = Deadline::from_now(Duration::from_millis(1));
        let got = cfg.deadline_for(Some(explicit)).unwrap();
        // The explicit (short) deadline won, not the 60 s default.
        assert!(got.remaining() <= Duration::from_millis(1));
    }
}
