//! Multi-tenant hosting: many named graphs, one process.
//!
//! A [`ServiceRegistry`] owns one [`HcdService`] per tenant. Isolation
//! is by construction, not by policy:
//!
//! * each tenant has its **own** `EpochCell` (generations are
//!   per-tenant counters that never interact),
//! * its own WAL/checkpoint directory (`<base>/<tenant>/` — two
//!   tenants can never write the same file),
//! * its own `serve.<tenant>.*` counter namespace (interned once via
//!   [`hcd_par::intern`]), and
//! * its own optional [`QueryCache`](crate::cache::QueryCache) — cache
//!   keys never leave the service that owns them, so cross-tenant
//!   cache bleed is structurally impossible.
//!
//! Tenant names are validated (`[a-z0-9_-]`, nonempty, ≤ 64 bytes) so
//! the composed metric names and directory paths stay sane.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use hcd_graph::CsrGraph;
use hcd_par::Executor;

use crate::cache::CacheConfig;
use crate::service::{DurabilityConfig, HcdService, ServeError};

/// Why a tenant registration was refused.
#[derive(Debug)]
pub enum RegistryError {
    /// A tenant by that name already exists.
    DuplicateTenant(String),
    /// The name failed validation (empty, too long, or a character
    /// outside `[a-z0-9_-]`).
    InvalidName(String),
    /// Building the tenant's service failed.
    Serve(ServeError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateTenant(n) => write!(f, "tenant {n:?} is already registered"),
            RegistryError::InvalidName(n) => write!(
                f,
                "invalid tenant name {n:?} (want nonempty [a-z0-9_-], at most 64 bytes)"
            ),
            RegistryError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl From<ServeError> for RegistryError {
    fn from(e: ServeError) -> Self {
        RegistryError::Serve(e)
    }
}

/// Per-tenant build options.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantConfig {
    /// Arm the generation-keyed memo cache with this sizing.
    pub cache: Option<CacheConfig>,
    /// Make the tenant durable (requires the registry to have a base
    /// directory; the tenant gets `<base>/<tenant>/`).
    pub durability: Option<DurabilityConfig>,
}

/// See the module docs.
pub struct ServiceRegistry {
    tenants: BTreeMap<String, Arc<HcdService>>,
    /// Root for per-tenant durability directories; `None` for a purely
    /// in-memory registry (durable registrations are then refused).
    base_dir: Option<PathBuf>,
}

fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

impl ServiceRegistry {
    /// An empty, in-memory registry.
    pub fn new() -> Self {
        ServiceRegistry {
            tenants: BTreeMap::new(),
            base_dir: None,
        }
    }

    /// An empty registry whose durable tenants live under `base_dir`.
    pub fn with_base_dir<P: Into<PathBuf>>(base_dir: P) -> Self {
        ServiceRegistry {
            tenants: BTreeMap::new(),
            base_dir: Some(base_dir.into()),
        }
    }

    /// Builds and registers a tenant service for `g` under `name`.
    /// The service is namespaced (`serve.<name>.*`), optionally cached
    /// and durable per `cfg`, and returned as the same `Arc` later
    /// [`ServiceRegistry::get`] calls hand out.
    pub fn try_register(
        &mut self,
        name: &str,
        g: &CsrGraph,
        cfg: &TenantConfig,
        exec: &Executor,
    ) -> Result<Arc<HcdService>, RegistryError> {
        if !valid_tenant_name(name) {
            return Err(RegistryError::InvalidName(name.to_owned()));
        }
        if self.tenants.contains_key(name) {
            return Err(RegistryError::DuplicateTenant(name.to_owned()));
        }
        let mut svc = HcdService::try_new(g, exec)
            .map_err(ServeError::Par)?
            .with_tenant(name);
        if let Some(cache_cfg) = cfg.cache {
            svc = svc.with_cache(cache_cfg);
        }
        if let Some(durability) = cfg.durability {
            let base = self.base_dir.as_ref().ok_or_else(|| {
                RegistryError::Serve(ServeError::Wal(crate::wal::WalError::Io(
                    std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        "durable tenant on a registry without a base directory",
                    ),
                )))
            })?;
            svc.try_attach_durability(base.join(name), durability, exec)?;
        }
        let svc = Arc::new(svc);
        self.tenants.insert(name.to_owned(), Arc::clone(&svc));
        Ok(svc)
    }

    /// The tenant's service, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<HcdService>> {
        self.tenants.get(name).cloned()
    }

    /// Registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// `(name, service)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<HcdService>)> {
        self.tenants.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The per-tenant durability root, when configured.
    pub fn base_dir(&self) -> Option<&PathBuf> {
        self.base_dir.as_ref()
    }
}

impl Default for ServiceRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServiceRegistry({:?})", self.tenant_names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Query;
    use hcd_dynamic::EdgeUpdate;
    use hcd_graph::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0)]).build()
    }

    fn path() -> CsrGraph {
        GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build()
    }

    #[test]
    fn tenants_have_independent_generations_and_answers() {
        let exec = Executor::sequential();
        let mut reg = ServiceRegistry::new();
        let a = reg
            .try_register("alpha", &triangle(), &TenantConfig::default(), &exec)
            .unwrap();
        let b = reg
            .try_register("beta", &path(), &TenantConfig::default(), &exec)
            .unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.tenant_names(), vec!["alpha", "beta"]);
        // Advance only alpha.
        a.try_apply_batch(&[EdgeUpdate::Insert(0, 3)], &exec)
            .unwrap();
        assert_eq!(a.generation(), 1);
        assert_eq!(b.generation(), 0);
        // The two graphs answer differently — no shared state.
        let qa = a.try_query_batch(&[Query::InKCore(0, 2)], &exec).unwrap();
        let qb = b.try_query_batch(&[Query::InKCore(0, 2)], &exec).unwrap();
        assert_ne!(qa.answers, qb.answers);
        assert_eq!(a.tenant(), Some("alpha"));
    }

    #[test]
    fn tenant_counters_are_namespaced() {
        let exec = Executor::sequential().with_metrics();
        let mut reg = ServiceRegistry::new();
        let a = reg
            .try_register("alpha", &triangle(), &TenantConfig::default(), &exec)
            .unwrap();
        a.try_in_k_core(0, 1, &exec).unwrap();
        a.try_apply_batch(&[EdgeUpdate::Insert(0, 3)], &exec)
            .unwrap();
        let m = exec.take_metrics();
        assert_eq!(m.get_counter("serve.alpha.queries").unwrap().value, 1);
        assert_eq!(m.get_counter("serve.alpha.swaps").unwrap().value, 1);
        assert!(m.get_counter("serve.queries").is_none());
        assert!(m.get_counter("serve.swaps").is_none());
        let regions: Vec<_> = m.regions.iter().map(|r| r.name).collect();
        assert!(regions.contains(&"serve.alpha.query.member"), "{regions:?}");
        assert!(regions.contains(&"serve.alpha.rebuild"), "{regions:?}");
    }

    #[test]
    fn duplicate_and_invalid_names_are_refused() {
        let exec = Executor::sequential();
        let mut reg = ServiceRegistry::new();
        reg.try_register("ok-name_1", &triangle(), &TenantConfig::default(), &exec)
            .unwrap();
        assert!(matches!(
            reg.try_register("ok-name_1", &triangle(), &TenantConfig::default(), &exec),
            Err(RegistryError::DuplicateTenant(_))
        ));
        for bad in ["", "Has Caps", "dots.break.metrics", "a/b"] {
            assert!(
                matches!(
                    reg.try_register(bad, &triangle(), &TenantConfig::default(), &exec),
                    Err(RegistryError::InvalidName(_))
                ),
                "{bad:?} should be invalid"
            );
        }
    }

    #[test]
    fn durable_tenants_get_disjoint_directories() {
        let exec = Executor::sequential();
        let base = std::env::temp_dir().join(format!("hcd-registry-test-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let mut reg = ServiceRegistry::with_base_dir(&base);
        let cfg = TenantConfig {
            cache: None,
            durability: Some(DurabilityConfig::default()),
        };
        let a = reg.try_register("alpha", &triangle(), &cfg, &exec).unwrap();
        let b = reg.try_register("beta", &path(), &cfg, &exec).unwrap();
        assert_eq!(a.durability_dir().unwrap(), base.join("alpha"));
        assert_eq!(b.durability_dir().unwrap(), base.join("beta"));
        a.try_apply_batch(&[EdgeUpdate::Insert(0, 3)], &exec)
            .unwrap();
        assert!(base.join("alpha").join(crate::WAL_FILE_NAME).exists());
        assert!(base.join("beta").join(crate::WAL_FILE_NAME).exists());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn durable_registration_without_base_dir_is_refused() {
        let exec = Executor::sequential();
        let mut reg = ServiceRegistry::new();
        let cfg = TenantConfig {
            cache: None,
            durability: Some(DurabilityConfig::default()),
        };
        assert!(matches!(
            reg.try_register("alpha", &triangle(), &cfg, &exec),
            Err(RegistryError::Serve(_))
        ));
    }
}
