//! Snapshot-isolated HCD query serving (the paper's §VII use case,
//! productionized).
//!
//! The HCD is positioned as a *reusable index* for repeated core and
//! community queries; this crate is the first step from "reproduce the
//! construction" to "serve the index":
//!
//! * [`Snapshot`] — one immutable, internally consistent index state
//!   (`CsrGraph` + `CoreDecomposition` + `Hcd`), stamped with the
//!   generation it was published at;
//! * [`HcdService`] — concurrent readers answer [`Query`]s against the
//!   current snapshot (loaded with one `Arc` clone from an
//!   `hcd_par::EpochCell`) while a single writer applies **batched**
//!   edge updates through `hcd_dynamic::DynamicCore`, rebuilds the
//!   hierarchy, and publishes the next snapshot with an atomic epoch
//!   swap. Readers never wait on a rebuild and never observe a torn
//!   index; every response carries the generation it was answered from;
//! * [`QueryBatch`]-style execution — [`HcdService::try_query_batch`]
//!   answers many independent queries in one parallel region
//!   (`serve.query.batch`), all from the *same* snapshot;
//! * [`workload`] — the seeded mixed read/update workload behind
//!   `hcd-cli serve-bench`;
//! * **durability** ([`wal`], [`checkpoint`], [`recover`]) — an opt-in
//!   crash-safety layer: every acknowledged batch is appended to a
//!   checksummed write-ahead log *before* it is applied, snapshot
//!   checkpoints are written atomically in the checksummed v2 binary
//!   format, and [`HcdService::recover`] rebuilds the exact
//!   last-acknowledged state from the newest valid checkpoint plus the
//!   WAL suffix — torn tails (kill-mid-write) are truncated with a
//!   warning, mid-log corruption is refused. The `Wal*`/`Ckpt*`
//!   [`hcd_par::CrashPoint`]s let the kill-and-recover harness die at
//!   every IO boundary deterministically.
//!
//! Every query and rebuild runs through the shared `Executor`, so the
//! full observability and failure machinery (metrics regions
//! `serve.query.*` / `serve.rebuild`, counters `serve.queries`,
//! `serve.batches`, `serve.swaps`, `serve.stale_reads`, deadlines,
//! cancellation, fault injection) applies to the service for free. A
//! failed rebuild (panic, cancellation, deadline) never unpublishes
//! anything: the service keeps serving the previous snapshot, and the
//! pending graph state is picked up by the next successful publication.

pub mod admission;
pub mod cache;
pub mod checkpoint;
pub mod events;
pub mod ingress;
pub mod openloop;
#[cfg(test)]
mod proptests;
pub mod recover;
pub mod registry;
pub mod service;
pub mod snapshot;
pub mod wal;
pub mod workload;

pub use admission::{AdmissionConfig, Rejected};
pub use cache::{CacheConfig, CacheKey, CacheStats, CachedAnswer, QueryCache};
pub use checkpoint::CheckpointError;
pub use events::{EventLog, EVENTS_SCHEMA};
pub use ingress::{DrainReport, IngressQueue};
pub use openloop::{run_open_loop, OpenLoopConfig, OpenLoopSummary};
pub use recover::{RecoverError, RecoveryReport};
pub use registry::{RegistryError, ServiceRegistry, TenantConfig};
pub use service::{
    BatchAnswers, DurabilityConfig, HcdService, Query, QueryAnswer, Response, ServeError,
};
pub use snapshot::Snapshot;
pub use wal::{FsyncPolicy, TailStatus, WalError, WalScan, WalWriter, WAL_FILE_NAME};
pub use workload::{run_workload, run_workload_with, WorkloadConfig, WorkloadSummary};
