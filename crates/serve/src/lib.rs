//! Snapshot-isolated HCD query serving (the paper's §VII use case,
//! productionized).
//!
//! The HCD is positioned as a *reusable index* for repeated core and
//! community queries; this crate is the first step from "reproduce the
//! construction" to "serve the index":
//!
//! * [`Snapshot`] — one immutable, internally consistent index state
//!   (`CsrGraph` + `CoreDecomposition` + `Hcd`), stamped with the
//!   generation it was published at;
//! * [`HcdService`] — concurrent readers answer [`Query`]s against the
//!   current snapshot (loaded with one `Arc` clone from an
//!   `hcd_par::EpochCell`) while a single writer applies **batched**
//!   edge updates through `hcd_dynamic::DynamicCore`, rebuilds the
//!   hierarchy, and publishes the next snapshot with an atomic epoch
//!   swap. Readers never wait on a rebuild and never observe a torn
//!   index; every response carries the generation it was answered from;
//! * [`QueryBatch`]-style execution — [`HcdService::try_query_batch`]
//!   answers many independent queries in one parallel region
//!   (`serve.query.batch`), all from the *same* snapshot;
//! * [`workload`] — the seeded mixed read/update workload behind
//!   `hcd-cli serve-bench`.
//!
//! Every query and rebuild runs through the shared `Executor`, so the
//! full observability and failure machinery (metrics regions
//! `serve.query.*` / `serve.rebuild`, counters `serve.queries`,
//! `serve.batches`, `serve.swaps`, `serve.stale_reads`, deadlines,
//! cancellation, fault injection) applies to the service for free. A
//! failed rebuild (panic, cancellation, deadline) never unpublishes
//! anything: the service keeps serving the previous snapshot, and the
//! pending graph state is picked up by the next successful publication.

pub mod service;
pub mod snapshot;
pub mod workload;

pub use service::{BatchAnswers, HcdService, Query, QueryAnswer, Response};
pub use snapshot::Snapshot;
pub use workload::{run_workload, WorkloadConfig, WorkloadSummary};
