//! The snapshot-isolated query service.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hcd_core::query::{core_containing, hierarchy_position, in_k_core, same_k_core};
use hcd_dynamic::{BatchReport, DynamicCore, EdgeUpdate};
use hcd_graph::{CsrGraph, VertexId};
use hcd_par::{intern, EpochCell, Executor, ParError, CHECKPOINT_STRIDE};
use hcd_search::{try_pbks_on, BestCore, Metric};
use parking_lot::Mutex;

use crate::cache::{CacheConfig, CacheKey, CacheStats, CachedAnswer, QueryCache};
use crate::checkpoint::{self, CheckpointError};
use crate::events::EventLog;
use crate::snapshot::Snapshot;
use crate::wal::{FsyncPolicy, WalError, WalWriter, WAL_FILE_NAME};

/// Why a service write failed.
///
/// Read paths still speak plain [`ParError`]; writes gained a
/// durability layer, so their failures split into "the parallel
/// pipeline failed" and "the write-ahead append failed".
#[derive(Debug)]
pub enum ServeError {
    /// The rebuild/publish pipeline failed (contained panic,
    /// cancellation, expired deadline, injected fault). Nothing was
    /// published; any WAL record written for the batch stays — the
    /// maintained writer state keeps the batch too, so log and memory
    /// agree.
    Par(ParError),
    /// The write-ahead append failed (real IO error or injected crash).
    /// The batch was neither logged, applied, nor acknowledged; the old
    /// snapshot keeps serving.
    Wal(WalError),
    /// Setting up durability failed (initial checkpoint write).
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Par(e) => write!(f, "{e}"),
            ServeError::Wal(e) => write!(f, "{e}"),
            ServeError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl From<ParError> for ServeError {
    fn from(e: ParError) -> Self {
        ServeError::Par(e)
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Wal(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl ServeError {
    /// Whether this failure is a scheduled [`hcd_par::CrashPoint`]
    /// firing (the kill-and-recover harness's signal that the simulated
    /// process died) rather than an organic error.
    pub fn is_simulated_crash(&self) -> bool {
        matches!(
            self,
            ServeError::Wal(WalError::Crashed(_))
                | ServeError::Checkpoint(CheckpointError::Crashed(_))
        )
    }
}

/// Knobs for the durability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// When the WAL is fsynced relative to appends.
    pub fsync: FsyncPolicy,
    /// Write a snapshot checkpoint every this-many applied batches
    /// (`0` = never after the initial one; recovery then replays the
    /// whole log).
    pub checkpoint_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 8,
        }
    }
}

/// The writer-side durability state, held under the same lock discipline
/// as the [`DynamicCore`] writer (always writer lock first).
pub(crate) struct Durable {
    pub(crate) dir: PathBuf,
    pub(crate) wal: WalWriter,
    pub(crate) cfg: DurabilityConfig,
    /// Sequence number of the newest on-disk checkpoint.
    pub(crate) last_checkpoint_seq: u64,
    /// A simulated crash fired somewhere in the durability path: the
    /// "process" is dead, so every later durable write is refused. (The
    /// read side keeps answering — the harness just stops using the
    /// instance, like the real dead process it stands in for.)
    pub(crate) poisoned: bool,
}

/// A query against one snapshot. All variants are answered from the
/// index alone (no graph traversal beyond the HCD structures), so a
/// batch of them parallelizes embarrassingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The vertex set of the k-core containing `v` (`None` when `v` is
    /// unknown to the snapshot or its coreness is below `k`).
    CoreContaining(VertexId, u32),
    /// `(depth, subtree size)` of `v`'s tree node.
    HierarchyPosition(VertexId),
    /// Whether `v` belongs to some k-core.
    InKCore(VertexId, u32),
    /// Whether `u` and `v` share a k-core.
    SameKCore(VertexId, VertexId, u32),
}

/// The answer to one [`Query`], same variant order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Sorted member list, or `None` (unknown vertex / `k` too large).
    CoreContaining(Option<Vec<VertexId>>),
    /// `None` for a vertex the snapshot does not know.
    HierarchyPosition(Option<(usize, usize)>),
    /// Unknown vertices are in no k-core for `k >= 1` (and in the 0-core
    /// of nothing — membership is simply `false`).
    InKCore(bool),
    /// `false` unless both vertices are known and share the core.
    SameKCore(bool),
}

/// A service response: the value plus the generation of the snapshot it
/// was answered from. Consumers correlate responses with published
/// epochs (and validators check no response ever names an unpublished
/// generation).
#[derive(Debug, Clone, PartialEq)]
pub struct Response<T> {
    /// Generation of the snapshot that produced `value`.
    pub generation: u64,
    /// The answer.
    pub value: T,
}

/// Answers for a whole query batch, all from one snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAnswers {
    /// Generation of the snapshot every answer was computed from.
    pub generation: u64,
    /// One answer per query, in input order.
    pub answers: Vec<QueryAnswer>,
}

/// Answers `q` from `snap`. Total: out-of-range vertex ids (e.g. ids
/// that only exist in a newer snapshot) answer negatively instead of
/// panicking, so readers holding an old snapshot are always safe.
fn answer(snap: &Snapshot, q: &Query) -> QueryAnswer {
    let n = snap.graph.num_vertices();
    let known = |v: VertexId| (v as usize) < n;
    match *q {
        Query::CoreContaining(v, k) => QueryAnswer::CoreContaining(if known(v) {
            core_containing(&snap.hcd, &snap.cores, v, k).map(|mut members| {
                members.sort_unstable();
                members
            })
        } else {
            None
        }),
        Query::HierarchyPosition(v) => {
            QueryAnswer::HierarchyPosition(known(v).then(|| hierarchy_position(&snap.hcd, v)))
        }
        Query::InKCore(v, k) => QueryAnswer::InKCore(known(v) && in_k_core(&snap.cores, v, k)),
        Query::SameKCore(u, v, k) => QueryAnswer::SameKCore(
            known(u) && known(v) && same_k_core(&snap.hcd, &snap.cores, u, v, k),
        ),
    }
}

/// The full set of counter and *region* names one service instance
/// ticks. Single-tenant services use the historical global literals
/// (so every existing test, baseline, and dashboard is untouched);
/// tenant services swap in interned `serve.<tenant>.*` names wholesale,
/// which is what isolates one tenant's metrics from another's.
///
/// **Histogram names are deliberately not here.** The histogram
/// registry has a small fixed slot budget ([`hcd_par::hist`] caps
/// distinct names), so latency histograms stay global — per-tenant
/// latency splits come from the per-tenant counters and regions, while
/// the histograms aggregate the process-wide latency distribution the
/// p99 gate actually cares about.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServeNames {
    pub(crate) queries: &'static str,
    pub(crate) stale_reads: &'static str,
    pub(crate) noop_batches: &'static str,
    pub(crate) wal_appends: &'static str,
    pub(crate) wal_bytes: &'static str,
    pub(crate) wal_errors: &'static str,
    pub(crate) batches: &'static str,
    pub(crate) swaps: &'static str,
    pub(crate) checkpoints: &'static str,
    pub(crate) ckpt_errors: &'static str,
    pub(crate) cache_hits: &'static str,
    pub(crate) cache_misses: &'static str,
    pub(crate) cache_evictions: &'static str,
    pub(crate) cache_bytes: &'static str,
    pub(crate) region_query_core: &'static str,
    pub(crate) region_query_position: &'static str,
    pub(crate) region_query_member: &'static str,
    pub(crate) region_query_same: &'static str,
    pub(crate) region_query_batch: &'static str,
    pub(crate) region_rebuild: &'static str,
}

impl ServeNames {
    pub(crate) const GLOBAL: ServeNames = ServeNames {
        queries: "serve.queries",
        stale_reads: "serve.stale_reads",
        noop_batches: "serve.noop_batches",
        wal_appends: "serve.wal_appends",
        wal_bytes: "serve.wal_bytes",
        wal_errors: "serve.wal_errors",
        batches: "serve.batches",
        swaps: "serve.swaps",
        checkpoints: "serve.checkpoints",
        ckpt_errors: "serve.ckpt_errors",
        cache_hits: "serve.cache.hits",
        cache_misses: "serve.cache.misses",
        cache_evictions: "serve.cache.evictions",
        cache_bytes: "serve.cache.bytes",
        region_query_core: "serve.query.core",
        region_query_position: "serve.query.position",
        region_query_member: "serve.query.member",
        region_query_same: "serve.query.same",
        region_query_batch: "serve.query.batch",
        region_rebuild: "serve.rebuild",
    };

    pub(crate) fn for_tenant(tenant: &str) -> ServeNames {
        let n = |suffix: &str| intern(&format!("serve.{tenant}.{suffix}"));
        ServeNames {
            queries: n("queries"),
            stale_reads: n("stale_reads"),
            noop_batches: n("noop_batches"),
            wal_appends: n("wal_appends"),
            wal_bytes: n("wal_bytes"),
            wal_errors: n("wal_errors"),
            batches: n("batches"),
            swaps: n("swaps"),
            checkpoints: n("checkpoints"),
            ckpt_errors: n("ckpt_errors"),
            cache_hits: n("cache.hits"),
            cache_misses: n("cache.misses"),
            cache_evictions: n("cache.evictions"),
            cache_bytes: n("cache.bytes"),
            region_query_core: n("query.core"),
            region_query_position: n("query.position"),
            region_query_member: n("query.member"),
            region_query_same: n("query.same"),
            region_query_batch: n("query.batch"),
            region_rebuild: n("rebuild"),
        }
    }
}

/// A snapshot-isolated HCD query service (see the crate docs).
///
/// Reads and writes are fully decoupled:
///
/// * **readers** load the current [`Snapshot`] with one `Arc` clone and
///   answer from it — a publication happening mid-query is invisible;
///   the response's `generation` says exactly which state it saw;
/// * the **writer** (serialized by an internal lock; any thread may
///   call it) applies an [`EdgeUpdate`] batch to the maintained
///   [`DynamicCore`] incrementally, snapshots the graph, surgically
///   repairs the published hierarchy around the batch's changed region
///   ([`hcd_core::Hcd::repair`]), and publishes the result with an
///   atomic epoch swap — update cost is proportional to the changed
///   region, not the graph; batches that change nothing publish no new
///   generation at all.
///
/// A rebuild failure (contained panic, cancellation, expired deadline —
/// including injected faults in the `serve.rebuild` region) publishes
/// nothing: the service keeps serving the previous snapshot, the
/// coreness maintenance already done is kept, and the next successful
/// [`HcdService::try_apply_batch`] publishes the cumulative state.
pub struct HcdService {
    cell: EpochCell<Snapshot>,
    writer: Mutex<DynamicCore>,
    /// Durability state; `None` for a purely in-memory service.
    durable: Mutex<Option<Durable>>,
    /// Cumulative count of reads answered from a superseded snapshot.
    stale_reads: std::sync::atomic::AtomicU64,
    /// Whether the maintained writer state has run ahead of the
    /// published snapshot (a publish attempt failed after its batch was
    /// applied). While set, the no-op fast path is disabled and the next
    /// publication rebuilds the hierarchy from scratch instead of
    /// surgically repairing the (stale) published forest. Logically
    /// guarded by the writer lock; atomic so readers of the flag don't
    /// need it.
    writer_dirty: std::sync::atomic::AtomicBool,
    /// Structured writer event log (see [`crate::events`]); `None`
    /// unless attached. Leaf lock: taken only while already holding the
    /// writer lock, released before returning.
    events: Mutex<Option<EventLog>>,
    /// Counter/region names this instance ticks (global literals for
    /// single-tenant services, `serve.<tenant>.*` for registry tenants).
    names: ServeNames,
    /// The tenant this service is registered as, when any.
    tenant: Option<&'static str>,
    /// Generation-keyed memo cache for expensive answers; `None` keeps
    /// every query on the compute path (the cache-disarmed baseline the
    /// differential tests compare against).
    cache: Option<QueryCache>,
}

impl HcdService {
    /// Builds the generation-0 snapshot from `g` and starts serving it.
    pub fn try_new(g: &CsrGraph, exec: &Executor) -> Result<Self, ParError> {
        let snapshot = Snapshot::try_build(g, 0, exec)?;
        let writer = DynamicCore::from_csr(g);
        Ok(HcdService {
            cell: EpochCell::new(snapshot),
            writer: Mutex::new(writer),
            durable: Mutex::new(None),
            stale_reads: std::sync::atomic::AtomicU64::new(0),
            writer_dirty: std::sync::atomic::AtomicBool::new(false),
            events: Mutex::new(None),
            names: ServeNames::GLOBAL,
            tenant: None,
            cache: None,
        })
    }

    /// Re-namespaces this instance's counters and regions to
    /// `serve.<tenant>.*` (interned once per distinct tenant). Latency
    /// histograms stay global — see [`ServeNames`]. Call before the
    /// service is shared; [`crate::ServiceRegistry`] does this for
    /// every tenant it hosts.
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.names = ServeNames::for_tenant(tenant);
        self.tenant = Some(intern(tenant));
        self
    }

    /// Arms the generation-keyed memo cache (see [`crate::cache`]).
    /// Disarmed services compute every answer; armed services return
    /// bit-identical answers (the differential harness proves it) while
    /// skipping recomputation within a generation.
    pub fn with_cache(mut self, cfg: CacheConfig) -> Self {
        self.cache = Some(QueryCache::new(cfg));
        self
    }

    /// The tenant name this service was registered under, if any.
    pub fn tenant(&self) -> Option<&'static str> {
        self.tenant
    }

    /// Whether the memo cache is armed.
    pub fn cache_armed(&self) -> bool {
        self.cache.is_some()
    }

    /// Point-in-time cache statistics (`None` when disarmed).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(QueryCache::stats)
    }

    /// The armed cache, when any. Exposed so the negative-path tests
    /// can plant doctored entries ([`QueryCache::doctor`]).
    pub fn cache(&self) -> Option<&QueryCache> {
        self.cache.as_ref()
    }

    /// [`HcdService::try_new`] plus durability: writes the seq-0
    /// checkpoint and an empty WAL into `dir` (created if missing,
    /// existing durable state overwritten — use
    /// [`HcdService::recover`](crate::recover) to resume a directory),
    /// then logs every acknowledged batch ahead of applying it.
    pub fn try_new_durable<P: AsRef<Path>>(
        g: &CsrGraph,
        dir: P,
        cfg: DurabilityConfig,
        exec: &Executor,
    ) -> Result<Self, ServeError> {
        let svc = Self::try_new(g, exec)?;
        svc.try_attach_durability(dir, cfg, exec)?;
        Ok(svc)
    }

    /// Makes an in-memory service durable after the fact: writes a
    /// checkpoint of the current state at the writer's sequence number
    /// and opens a fresh WAL in `dir` (created if missing, existing
    /// durable state overwritten). The registry uses this to give each
    /// tenant its own durability directory after namespacing.
    pub fn try_attach_durability<P: AsRef<Path>>(
        &self,
        dir: P,
        cfg: DurabilityConfig,
        exec: &Executor,
    ) -> Result<(), ServeError> {
        let writer = self.writer.lock();
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(WalError::Io)?;
        let seq = writer.seq();
        let snap = self.cell.load();
        checkpoint::write_checkpoint(&dir, seq, &snap.graph, exec)?;
        let wal = WalWriter::create(dir.join(WAL_FILE_NAME), cfg.fsync).map_err(WalError::Io)?;
        *self.durable.lock() = Some(Durable {
            dir,
            wal,
            cfg,
            last_checkpoint_seq: seq,
            poisoned: false,
        });
        Ok(())
    }

    /// Assembles a recovered service: the snapshot keeps its replayed
    /// epoch numbering and the durability state resumes appending where
    /// the pre-crash log left off.
    pub(crate) fn from_recovered(
        snapshot: Snapshot,
        writer: DynamicCore,
        durable: Durable,
    ) -> Self {
        let generation = snapshot.generation;
        HcdService {
            cell: EpochCell::new_at(snapshot, generation),
            writer: Mutex::new(writer),
            durable: Mutex::new(Some(durable)),
            stale_reads: std::sync::atomic::AtomicU64::new(0),
            writer_dirty: std::sync::atomic::AtomicBool::new(false),
            events: Mutex::new(None),
            names: ServeNames::GLOBAL,
            tenant: None,
            cache: None,
        }
    }

    /// Whether this service write-ahead-logs its batches.
    pub fn is_durable(&self) -> bool {
        self.durable.lock().is_some()
    }

    /// The durability directory, when the service is durable.
    pub fn durability_dir(&self) -> Option<PathBuf> {
        self.durable.lock().as_ref().map(|d| d.dir.clone())
    }

    /// Attaches a structured writer event log: every later write-path
    /// decision (batch applied, published, no-op, checkpoint, fault)
    /// is appended as one JSONL record. Replaces any previous log.
    pub fn attach_event_log(&self, log: EventLog) {
        *self.events.lock() = Some(log);
    }

    /// Runs `f` against the attached event log, if any.
    fn with_events(&self, f: impl FnOnce(&EventLog)) {
        if let Some(log) = self.events.lock().as_ref() {
            f(log);
        }
    }

    /// Infallible [`HcdService::try_new`] (panics on construction
    /// failure).
    pub fn new(g: &CsrGraph, exec: &Executor) -> Self {
        match Self::try_new(g, exec) {
            Ok(s) => s,
            Err(e) => e.raise(),
        }
    }

    /// The currently served snapshot. The returned `Arc` stays valid and
    /// immutable across later publications — hold it for as long as a
    /// consistent view is needed.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// The generation of the newest published snapshot.
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }

    /// Runs one closure-shaped query in a named `serve.query.*` region:
    /// the snapshot is loaded once, the closure runs under the
    /// executor's deadline/cancellation/fault plan, and the stale-read
    /// counter ticks when a publication raced the query. The region
    /// name is per-tenant; `hist` is the global latency histogram the
    /// sample lands in (see [`ServeNames`] on why they differ).
    fn try_query_one<T, F>(
        &self,
        region: &'static str,
        hist: &'static str,
        exec: &Executor,
        f: F,
    ) -> Result<Response<T>, ParError>
    where
        T: Send,
        F: Fn(&Snapshot) -> T + Sync,
    {
        let _lat = exec.time(hist);
        let snap = self.cell.load();
        let slot: Mutex<Option<T>> = Mutex::new(None);
        exec.region(region).try_for_each_chunk(
            1,
            || (),
            |_, _, _| {
                exec.checkpoint()?;
                *slot.lock() = Some(f(&snap));
                Ok(())
            },
        )?;
        self.note_reads(exec, 1, snap.generation);
        let value = slot.into_inner().expect("query region ran its one chunk");
        Ok(Response {
            generation: snap.generation,
            value,
        })
    }

    /// Counter bookkeeping shared by all read paths. Stale reads —
    /// answers from a snapshot superseded while the query ran — are
    /// still internally consistent (snapshot isolation), just not the
    /// newest; counting them helps size batch cadence. The cumulative
    /// total goes out as a gauge so a zero is still visible in metrics
    /// (`add_counter` elides zero deltas).
    fn note_reads(&self, exec: &Executor, queries: u64, served_gen: u64) {
        use std::sync::atomic::Ordering;
        exec.add_counter(self.names.queries, queries);
        if served_gen < self.cell.generation() {
            self.stale_reads.fetch_add(queries, Ordering::Relaxed);
        }
        exec.gauge(
            self.names.stale_reads,
            self.stale_reads.load(Ordering::Relaxed),
        );
    }

    /// Counter bookkeeping for one cache lookup round: `hits`/`misses`
    /// tick as sums, the byte footprint goes out as a gauge (so a
    /// shrinking cache is still visible — sums cannot go down).
    fn note_cache(&self, exec: &Executor, cache: &QueryCache, hits: u64, misses: u64) {
        exec.add_counter(self.names.cache_hits, hits);
        exec.add_counter(self.names.cache_misses, misses);
        exec.gauge(self.names.cache_bytes, cache.stats().bytes);
    }

    /// Total reads (so far) answered from a snapshot that had already
    /// been superseded when they completed.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The k-core containing `v` (region `serve.query.core`). With the
    /// cache armed, a repeat of the same `(v, k)` against the same
    /// generation is answered from the memo — bit-identically, because
    /// the cached value *is* the value computed from that immutable
    /// snapshot.
    pub fn try_core_containing(
        &self,
        v: VertexId,
        k: u32,
        exec: &Executor,
    ) -> Result<Response<Option<Vec<VertexId>>>, ParError> {
        if let Some(cache) = &self.cache {
            let key = CacheKey::Core(v, k);
            let snap = self.cell.load();
            let found = {
                let _lat = exec.time("serve.cache.lookup");
                cache.get(snap.generation, &key)
            };
            if let Some(CachedAnswer::Core(members)) = found {
                self.note_cache(exec, cache, 1, 0);
                self.note_reads(exec, 1, snap.generation);
                return Ok(Response {
                    generation: snap.generation,
                    value: members,
                });
            }
            let resp = self.try_query_one(
                self.names.region_query_core,
                "serve.query.core",
                exec,
                |snap| match answer(snap, &Query::CoreContaining(v, k)) {
                    QueryAnswer::CoreContaining(m) => m,
                    _ => unreachable!("answer() preserves the variant"),
                },
            )?;
            // Key by the generation the answer was actually computed
            // from — a publication racing the miss inserts under the
            // *new* generation, never poisoning the old one.
            let evicted =
                cache.insert(resp.generation, key, CachedAnswer::Core(resp.value.clone()));
            exec.add_counter(self.names.cache_evictions, evicted);
            self.note_cache(exec, cache, 0, 1);
            return Ok(resp);
        }
        self.try_query_one(
            self.names.region_query_core,
            "serve.query.core",
            exec,
            |snap| match answer(snap, &Query::CoreContaining(v, k)) {
                QueryAnswer::CoreContaining(m) => m,
                _ => unreachable!("answer() preserves the variant"),
            },
        )
    }

    /// `(depth, subtree size)` of `v`'s tree node (region
    /// `serve.query.position`).
    pub fn try_hierarchy_position(
        &self,
        v: VertexId,
        exec: &Executor,
    ) -> Result<Response<Option<(usize, usize)>>, ParError> {
        self.try_query_one(
            self.names.region_query_position,
            "serve.query.position",
            exec,
            |snap| match answer(snap, &Query::HierarchyPosition(v)) {
                QueryAnswer::HierarchyPosition(p) => p,
                _ => unreachable!("answer() preserves the variant"),
            },
        )
    }

    /// k-core membership of `v` (region `serve.query.member`).
    pub fn try_in_k_core(
        &self,
        v: VertexId,
        k: u32,
        exec: &Executor,
    ) -> Result<Response<bool>, ParError> {
        self.try_query_one(
            self.names.region_query_member,
            "serve.query.member",
            exec,
            |snap| {
                matches!(
                    answer(snap, &Query::InKCore(v, k)),
                    QueryAnswer::InKCore(true)
                )
            },
        )
    }

    /// Whether `u` and `v` share a k-core (region `serve.query.same`).
    pub fn try_same_k_core(
        &self,
        u: VertexId,
        v: VertexId,
        k: u32,
        exec: &Executor,
    ) -> Result<Response<bool>, ParError> {
        self.try_query_one(
            self.names.region_query_same,
            "serve.query.same",
            exec,
            move |snap| {
                matches!(
                    answer(snap, &Query::SameKCore(u, v, k)),
                    QueryAnswer::SameKCore(true)
                )
            },
        )
    }

    /// PBKS best-community search on the current snapshot under
    /// `metric`. The heavy regions are PBKS's own (`search.preprocess`,
    /// `pbks.*`); the service accounts it as one read.
    pub fn try_best_community(
        &self,
        metric: &Metric,
        exec: &Executor,
    ) -> Result<Response<Option<BestCore>>, ParError> {
        let snap = self.cell.load();
        if let Some(cache) = &self.cache {
            let key = CacheKey::for_metric(metric);
            let found = {
                let _lat = exec.time("serve.cache.lookup");
                cache.get(snap.generation, &key)
            };
            if let Some(CachedAnswer::Best(best)) = found {
                self.note_cache(exec, cache, 1, 0);
                self.note_reads(exec, 1, snap.generation);
                return Ok(Response {
                    generation: snap.generation,
                    value: best,
                });
            }
        }
        let best = {
            let _lat = exec.time("serve.query.pbks");
            try_pbks_on(&snap.graph, &snap.cores, &snap.hcd, metric, exec)?
        };
        if let Some(cache) = &self.cache {
            let evicted = cache.insert(
                snap.generation,
                CacheKey::for_metric(metric),
                CachedAnswer::Best(best.clone()),
            );
            exec.add_counter(self.names.cache_evictions, evicted);
            self.note_cache(exec, cache, 0, 1);
        }
        self.note_reads(exec, 1, snap.generation);
        Ok(Response {
            generation: snap.generation,
            value: best,
        })
    }

    /// Answers many independent queries in **one parallel region**
    /// (`serve.query.batch`), all from the same snapshot — the batched
    /// read path. Answers come back in input order.
    pub fn try_query_batch(
        &self,
        queries: &[Query],
        exec: &Executor,
    ) -> Result<BatchAnswers, ParError> {
        let _lat = exec.time("serve.query.batch");
        let snap = self.cell.load();
        let slots: Vec<Mutex<Option<QueryAnswer>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        // Prefill cacheable answers from the memo before the region
        // opens. The region still iterates every index with identical
        // chunk boundaries and checkpoint cadence — a cache hit only
        // skips the recomputation of an answer this same snapshot
        // already produced, so armed and disarmed runs are
        // bit-identical by construction.
        let mut from_cache = vec![false; queries.len()];
        let (mut hits, mut misses) = (0u64, 0u64);
        if let Some(cache) = &self.cache {
            let _lk = exec.time("serve.cache.lookup");
            for (i, q) in queries.iter().enumerate() {
                if let Some(key) = CacheKey::for_query(q) {
                    match cache.get(snap.generation, &key) {
                        Some(CachedAnswer::Core(m)) => {
                            *slots[i].lock() = Some(QueryAnswer::CoreContaining(m));
                            from_cache[i] = true;
                            hits += 1;
                        }
                        _ => misses += 1,
                    }
                }
            }
        }
        let from_cache_ref = &from_cache;
        exec.region(self.names.region_query_batch)
            .try_for_each_chunk(
                queries.len(),
                || (),
                |_, _, range| {
                    for (done, i) in range.enumerate() {
                        if done % CHECKPOINT_STRIDE == 0 {
                            exec.checkpoint()?;
                        }
                        if from_cache_ref[i] {
                            continue;
                        }
                        *slots[i].lock() = Some(answer(&snap, &queries[i]));
                    }
                    Ok(())
                },
            )?;
        self.note_reads(exec, queries.len() as u64, snap.generation);
        let answers: Vec<QueryAnswer> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every query index was answered"))
            .collect();
        if let Some(cache) = &self.cache {
            let mut evicted = 0;
            for (i, q) in queries.iter().enumerate() {
                if from_cache[i] {
                    continue;
                }
                if let (Some(key), QueryAnswer::CoreContaining(m)) =
                    (CacheKey::for_query(q), &answers[i])
                {
                    evicted += cache.insert(snap.generation, key, CachedAnswer::Core(m.clone()));
                }
            }
            exec.add_counter(self.names.cache_evictions, evicted);
            self.note_cache(exec, cache, hits, misses);
        }
        Ok(BatchAnswers {
            generation: snap.generation,
            answers,
        })
    }

    /// Applies an update batch and publishes the next snapshot, doing
    /// work proportional to the changed region.
    ///
    /// Pipeline (all under the writer lock, never blocking readers):
    /// a **no-op fast path** — when every update is a duplicate insert,
    /// self-loop, or absent removal and the published snapshot is
    /// current, nothing is logged, applied, or published (the WAL, the
    /// sequence counter, and the generation all stand still and
    /// `serve.noop_batches` ticks); otherwise a **write-ahead log
    /// append + fsync** when the service is durable (the batch is on
    /// disk before anything observes it), incremental coreness
    /// maintenance ([`DynamicCore::try_apply_batch`], regions
    /// `dynamic.peel` / `dynamic.promote`), CSR + decomposition
    /// snapshotting plus **surgical hierarchy repair**
    /// ([`hcd_core::Hcd::repair`] on the published forest, seeded with
    /// the batch report's exact changed region) in the fault-injectable
    /// `serve.rebuild` region, one atomic epoch swap, then (per
    /// [`DurabilityConfig::checkpoint_every`]) a snapshot checkpoint.
    /// Only when the published forest is stale — a previous publish
    /// attempt failed after applying its batch — does the writer fall
    /// back to full PHCD reconstruction (regions `phcd.*`).
    ///
    /// On `Err`, nothing was published and the previous snapshot keeps
    /// serving. A WAL failure ([`ServeError::Wal`]) means the batch was
    /// not even logged or applied — `serve.wal_errors` ticks and the
    /// service stays exactly where it was. A pipeline failure
    /// ([`ServeError::Par`]) happens *after* the append: the maintained
    /// coreness state keeps the batch (riding along with the next
    /// successful publication) and so does the log, so memory and disk
    /// agree. Checkpoint IO errors never fail the batch — the WAL
    /// already covers it; `serve.ckpt_errors` ticks and recovery simply
    /// replays a longer suffix.
    pub fn try_apply_batch(
        &self,
        updates: &[EdgeUpdate],
        exec: &Executor,
    ) -> Result<Response<BatchReport>, ServeError> {
        use std::sync::atomic::Ordering;
        let mut writer = self.writer.lock();
        let mut durable = self.durable.lock();
        if let Some(d) = durable.as_mut() {
            if d.poisoned {
                return Err(ServeError::Wal(WalError::Poisoned));
            }
        }
        let was_dirty = self.writer_dirty.load(Ordering::Relaxed);
        if !was_dirty && writer.batch_is_noop(updates) {
            // Nothing would change and the published snapshot already
            // reflects the writer state exactly: acknowledge without
            // logging, bumping the sequence, or publishing.
            exec.add_counter(self.names.noop_batches, 1);
            self.with_events(|log| {
                log.noop(writer.seq(), self.cell.generation(), updates.len() as u64)
            });
            return Ok(Response {
                generation: self.cell.generation(),
                value: BatchReport {
                    seq: writer.seq(),
                    applied: 0,
                    skipped: updates.len(),
                    ..BatchReport::default()
                },
            });
        }
        // Everything past the fast path is real write work: time it as
        // one `serve.apply` histogram sample and stamp the event-log
        // records with durations from the same clock reading.
        let started = std::time::Instant::now();
        let _apply_lat = exec.time("serve.apply");
        let seq_attempt = writer.seq() + 1;
        let elapsed_ns =
            |s: std::time::Instant| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(d) = durable.as_mut() {
            // Log under the sequence number apply_batch is about to
            // stamp, so replay and live application agree exactly.
            match d.wal.append(writer.seq() + 1, updates, exec) {
                Ok(bytes) => {
                    exec.add_counter(self.names.wal_appends, 1);
                    exec.add_counter(self.names.wal_bytes, bytes);
                }
                Err(e) => {
                    if matches!(e, WalError::Crashed(_)) {
                        d.poisoned = true;
                    }
                    exec.add_counter(self.names.wal_errors, 1);
                    let e = ServeError::Wal(e);
                    self.with_events(|log| {
                        log.fault_kept_old_snapshot(
                            seq_attempt,
                            self.cell.generation(),
                            &e.to_string(),
                            elapsed_ns(started),
                        )
                    });
                    return Err(e);
                }
            }
        }
        // From here until the swap succeeds, any failure leaves the
        // writer ahead of the published snapshot: the batch is applied
        // (and logged) but not served. Mark the forest stale up front;
        // a completed publish clears it.
        self.writer_dirty.store(true, Ordering::Relaxed);
        let report = match writer.try_apply_batch(updates, exec) {
            Ok(r) => r,
            Err(e) => {
                let e = ServeError::Par(e);
                self.with_events(|log| {
                    log.fault_kept_old_snapshot(
                        seq_attempt,
                        self.cell.generation(),
                        &e.to_string(),
                        elapsed_ns(started),
                    )
                });
                return Err(e);
            }
        };
        exec.add_counter(self.names.batches, 1);
        let affected = (report.changed.len() + report.touched.len()) as u64;

        // The published forest is exact for the pre-batch graph unless a
        // previous publish failed; repair it with the batch's changed
        // region instead of rebuilding from scratch.
        let prev = (!was_dirty).then(|| self.cell.load());
        // Snapshot the writer state (and repair the hierarchy) inside
        // the named rebuild region so deadlines, cancellation, and the
        // fault matrix govern it.
        let parts: Mutex<Option<(CsrGraph, _, Option<hcd_core::Hcd>)>> = Mutex::new(None);
        let writer_ref = &*writer;
        let report_ref = &report;
        let rebuilt = exec.region(self.names.region_rebuild).try_for_each_chunk(
            1,
            || (),
            |_, _, _| {
                exec.checkpoint()?;
                let csr = writer_ref.graph().to_csr();
                let cores = writer_ref.decomposition();
                let hcd = prev.as_ref().map(|p| {
                    let mut dirty = report_ref.changed.clone();
                    dirty.extend_from_slice(&report_ref.touched);
                    let _lat = exec.time("serve.repair");
                    p.hcd.repair(&csr, &cores, &dirty)
                });
                *parts.lock() = Some((csr, cores, hcd));
                Ok(())
            },
        );
        if let Err(e) = rebuilt {
            let e = ServeError::Par(e);
            self.with_events(|log| {
                log.fault_kept_old_snapshot(
                    report.seq,
                    self.cell.generation(),
                    &e.to_string(),
                    elapsed_ns(started),
                )
            });
            return Err(e);
        }
        let (csr, cores, repaired) = parts.into_inner().expect("rebuild region ran");
        let hcd = match repaired {
            Some(hcd) => hcd,
            None => match hcd_core::try_phcd(&csr, &cores, exec) {
                Ok(hcd) => hcd,
                Err(e) => {
                    let e = ServeError::Par(e);
                    self.with_events(|log| {
                        log.fault_kept_old_snapshot(
                            report.seq,
                            self.cell.generation(),
                            &e.to_string(),
                            elapsed_ns(started),
                        )
                    });
                    return Err(e);
                }
            },
        };

        self.with_events(|log| {
            log.batch_applied(
                report.seq,
                self.cell.generation(),
                report.applied as u64,
                report.skipped as u64,
                affected,
                elapsed_ns(started),
            )
        });
        let generation = self.cell.generation() + 1;
        let snapshot = Arc::new(Snapshot::from_parts(csr, cores, hcd, generation));
        let published = {
            let _lat = exec.time("serve.publish");
            self.cell.publish(Arc::clone(&snapshot))
        };
        // The writer lock serializes publications, so the generation we
        // stamped is the one the cell advanced to.
        debug_assert_eq!(published, generation);
        self.writer_dirty.store(false, Ordering::Relaxed);
        exec.add_counter(self.names.swaps, 1);
        if let Some(cache) = &self.cache {
            // Every pre-publication generation just became stale; the
            // sweep is what guarantees no reader can be handed an old
            // answer under the new generation's key.
            let evicted = cache.evict_stale(published);
            exec.add_counter(self.names.cache_evictions, evicted);
            exec.gauge(self.names.cache_bytes, cache.stats().bytes);
        }
        self.with_events(|log| log.published(report.seq, published, affected, elapsed_ns(started)));

        if let Some(d) = durable.as_mut() {
            // Saturating: recovery can restore a checkpoint newer than
            // the replayed WAL tail, leaving `last_checkpoint_seq`
            // ahead of the live sequence for a while.
            let due = d.cfg.checkpoint_every > 0
                && report.seq.saturating_sub(d.last_checkpoint_seq) >= d.cfg.checkpoint_every;
            if due {
                let ckpt_started = std::time::Instant::now();
                match checkpoint::write_checkpoint(&d.dir, report.seq, &snapshot.graph, exec) {
                    Ok(_) => {
                        d.last_checkpoint_seq = report.seq;
                        exec.add_counter(self.names.checkpoints, 1);
                        self.with_events(|log| {
                            log.checkpoint(report.seq, published, elapsed_ns(ckpt_started))
                        });
                    }
                    Err(CheckpointError::Crashed(_)) => {
                        // The batch is already durable (WAL) and
                        // acknowledged (published); the simulated
                        // process dies here without affecting either,
                        // so the caller still gets its ack.
                        d.poisoned = true;
                    }
                    Err(CheckpointError::Io(_)) => {
                        exec.add_counter(self.names.ckpt_errors, 1);
                    }
                }
            }
        }
        Ok(Response {
            generation: published,
            value: report,
        })
    }
}

impl std::fmt::Debug for HcdService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HcdService(generation={})", self.generation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
            .build()
    }

    #[test]
    fn initial_snapshot_serves_generation_zero() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&triangle_plus_tail(), &exec);
        assert_eq!(svc.generation(), 0);
        let r = svc.try_in_k_core(0, 2, &exec).unwrap();
        assert_eq!(r.generation, 0);
        assert!(r.value);
        let r = svc.try_core_containing(0, 2, &exec).unwrap();
        assert_eq!(r.value, Some(vec![0, 1, 2]));
        let r = svc.try_hierarchy_position(4, &exec).unwrap();
        assert!(r.value.is_some());
    }

    #[test]
    fn publication_advances_generation_and_answers() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&triangle_plus_tail(), &exec);
        let before = svc.snapshot();
        let resp = svc
            .try_apply_batch(&[EdgeUpdate::Insert(1, 3), EdgeUpdate::Insert(0, 3)], &exec)
            .unwrap();
        assert_eq!(resp.generation, 1);
        assert_eq!(svc.generation(), 1);
        // K4 now: vertex 3 reaches coreness 3.
        let r = svc.try_core_containing(3, 3, &exec).unwrap();
        assert_eq!(r.generation, 1);
        assert_eq!(r.value, Some(vec![0, 1, 2, 3]));
        // The held pre-publication snapshot still answers the old state.
        assert_eq!(before.generation, 0);
        assert_eq!(before.cores.coreness(3), 1);
        svc.snapshot().validate().unwrap();
    }

    #[test]
    fn out_of_range_vertices_answer_negatively() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&triangle_plus_tail(), &exec);
        assert_eq!(svc.try_core_containing(99, 1, &exec).unwrap().value, None);
        assert_eq!(svc.try_hierarchy_position(99, &exec).unwrap().value, None);
        assert!(!svc.try_in_k_core(99, 0, &exec).unwrap().value);
        let batch = svc
            .try_query_batch(&[Query::SameKCore(0, 99, 1)], &exec)
            .unwrap();
        assert_eq!(batch.answers, vec![QueryAnswer::SameKCore(false)]);
    }

    #[test]
    fn query_batch_answers_in_order_from_one_snapshot() {
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(4),
        ] {
            let svc = HcdService::new(&triangle_plus_tail(), &exec);
            let queries = vec![
                Query::InKCore(0, 2),
                Query::InKCore(4, 2),
                Query::SameKCore(0, 1, 2),
                Query::SameKCore(0, 4, 1),
                Query::HierarchyPosition(2),
                Query::CoreContaining(4, 1),
            ];
            let batch = svc.try_query_batch(&queries, &exec).unwrap();
            assert_eq!(batch.generation, 0, "{}", exec.mode_name());
            let pos2 = hierarchy_position(&svc.snapshot().hcd, 2);
            assert_eq!(
                batch.answers,
                vec![
                    QueryAnswer::InKCore(true),
                    QueryAnswer::InKCore(false),
                    QueryAnswer::SameKCore(true),
                    QueryAnswer::SameKCore(true), // whole graph is one 1-core
                    QueryAnswer::HierarchyPosition(Some(pos2)),
                    QueryAnswer::CoreContaining(Some(vec![0, 1, 2, 3, 4])),
                ],
                "{}",
                exec.mode_name()
            );
        }
    }

    #[test]
    fn best_community_runs_on_the_snapshot() {
        let exec = Executor::sequential();
        let svc = HcdService::new(&triangle_plus_tail(), &exec);
        let r = svc
            .try_best_community(&Metric::AverageDegree, &exec)
            .unwrap();
        let best = r.value.expect("non-empty graph");
        assert!(best.k >= 1);
    }

    #[test]
    fn failed_rebuild_keeps_serving_the_old_snapshot() {
        use hcd_par::{Fault, FaultPlan};
        let exec = Executor::sequential();
        let svc = HcdService::new(&triangle_plus_tail(), &exec);
        // Inject a panic into the first region of the *next* run — that
        // is dynamic.peel (the batch engine opens it first).
        exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Panic));
        let err = svc
            .try_apply_batch(&[EdgeUpdate::Insert(1, 3)], &exec)
            .unwrap_err();
        assert!(matches!(err, ServeError::Par(ParError::Panicked { .. })));
        exec.clear_fault_plan();
        // Nothing was published.
        assert_eq!(svc.generation(), 0);
        let r = svc.try_core_containing(3, 1, &exec).unwrap();
        assert_eq!(r.generation, 0);
        // The maintained update is retained: the next successful batch
        // publishes the cumulative state.
        let resp = svc.try_apply_batch(&[], &exec).unwrap();
        assert_eq!(resp.generation, 1);
        assert!(svc.snapshot().graph.num_edges() == 6); // 5 seed + inserted {1,3}
        svc.snapshot().validate().unwrap();
    }

    #[test]
    fn counters_tick_when_metrics_enabled() {
        let exec = Executor::sequential().with_metrics();
        let svc = HcdService::new(&triangle_plus_tail(), &exec);
        svc.try_in_k_core(0, 1, &exec).unwrap();
        svc.try_query_batch(&[Query::InKCore(1, 1), Query::InKCore(2, 1)], &exec)
            .unwrap();
        svc.try_apply_batch(&[EdgeUpdate::Insert(3, 0)], &exec)
            .unwrap();
        let m = exec.take_metrics();
        assert_eq!(m.get_counter("serve.queries").unwrap().value, 3);
        assert_eq!(m.get_counter("serve.batches").unwrap().value, 1);
        assert_eq!(m.get_counter("serve.swaps").unwrap().value, 1);
        // Recorded as a gauge precisely so a zero still shows up.
        let stale = m.get_counter("serve.stale_reads").unwrap();
        assert_eq!(stale.kind, "max");
        assert_eq!(stale.value, 0);
        assert_eq!(svc.stale_reads(), 0);
        let names: Vec<_> = m.regions.iter().map(|r| r.name).collect();
        assert!(names.contains(&"serve.query.member"), "{names:?}");
        assert!(names.contains(&"serve.query.batch"), "{names:?}");
        assert!(names.contains(&"serve.rebuild"), "{names:?}");
        // The incremental maintenance engine ran through its regions.
        assert!(names.contains(&"dynamic.peel"), "{names:?}");
        assert!(names.contains(&"dynamic.promote"), "{names:?}");
        assert!(m.get_counter("dynamic.affected_vertices").unwrap().value >= 1);
        assert!(m.get_counter("dynamic.traversal_edges").unwrap().value >= 1);
    }

    #[test]
    fn noop_batches_publish_nothing_and_log_nothing() {
        let exec = Executor::sequential().with_metrics();
        let dir = tempdir();
        let svc = HcdService::try_new_durable(
            &triangle_plus_tail(),
            &dir,
            DurabilityConfig::default(),
            &exec,
        )
        .unwrap();
        let resp = svc
            .try_apply_batch(&[EdgeUpdate::Insert(1, 3)], &exec)
            .unwrap();
        assert_eq!(resp.generation, 1);
        let snap_before = svc.snapshot();
        exec.take_metrics();

        // Every update is a no-op: duplicate insert, self-loop, absent
        // or out-of-range removal.
        let noops = [
            EdgeUpdate::Insert(1, 3),
            EdgeUpdate::Insert(2, 2),
            EdgeUpdate::Remove(0, 4),
            EdgeUpdate::Remove(90, 91),
        ];
        let resp = svc.try_apply_batch(&noops, &exec).unwrap();
        // Acknowledged against the current state, but nothing moved:
        // no generation, no sequence bump, no swap, no WAL append.
        assert_eq!(resp.generation, 1);
        assert_eq!(resp.value.seq, 1);
        assert_eq!(resp.value.applied, 0);
        assert_eq!(resp.value.skipped, noops.len());
        assert_eq!(svc.generation(), 1);
        assert!(Arc::ptr_eq(&snap_before, &svc.snapshot()));
        let m = exec.take_metrics();
        assert!(m.get_counter("serve.swaps").is_none(), "swap on a no-op");
        assert!(
            m.get_counter("serve.wal_appends").is_none(),
            "WAL append on a no-op"
        );
        assert!(
            m.get_counter("serve.batches").is_none(),
            "batch counted on a no-op"
        );
        assert_eq!(m.get_counter("serve.noop_batches").unwrap().value, 1);
        // An empty batch takes the same fast path.
        let resp = svc.try_apply_batch(&[], &exec).unwrap();
        assert_eq!(resp.generation, 1);
        assert_eq!(svc.generation(), 1);
        // A real update afterwards still publishes with the next
        // uninterrupted sequence number (the no-ops consumed none).
        let resp = svc
            .try_apply_batch(&[EdgeUpdate::Insert(0, 4)], &exec)
            .unwrap();
        assert_eq!(resp.generation, 2);
        assert_eq!(resp.value.seq, 2);
        svc.snapshot().validate().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hcd-serve-test-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_service_logs_every_acknowledged_batch_and_checkpoints() {
        use crate::wal::{scan_wal_file, TailStatus};
        let dir = tempdir();
        let exec = Executor::sequential().with_metrics();
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 2,
        };
        let svc = HcdService::try_new_durable(&triangle_plus_tail(), &dir, cfg, &exec).unwrap();
        assert!(svc.is_durable());
        assert_eq!(svc.durability_dir().unwrap(), dir);
        for i in 0..3u32 {
            svc.try_apply_batch(&[EdgeUpdate::Insert(i, i + 5)], &exec)
                .unwrap();
        }
        let scan = scan_wal_file(dir.join(WAL_FILE_NAME)).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // checkpoint_every = 2: the initial seq-0 checkpoint plus one at
        // seq 2 (seq 3 is one batch past it, not yet due).
        let seqs: Vec<u64> = checkpoint::list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(seqs, vec![0, 2]);
        let m = exec.take_metrics();
        assert_eq!(m.get_counter("serve.wal_appends").unwrap().value, 3);
        assert!(m.get_counter("serve.wal_bytes").unwrap().value > 0);
        assert_eq!(m.get_counter("serve.checkpoints").unwrap().value, 1);
        assert!(m.get_counter("serve.wal_errors").is_none());
    }

    #[test]
    fn wal_crash_rejects_the_batch_and_keeps_serving() {
        use hcd_par::{CrashPoint, FaultPlan};
        let dir = tempdir();
        let exec = Executor::sequential().with_metrics();
        let svc = HcdService::try_new_durable(
            &triangle_plus_tail(),
            &dir,
            DurabilityConfig::default(),
            &exec,
        )
        .unwrap();
        svc.try_apply_batch(&[EdgeUpdate::Insert(0, 3)], &exec)
            .unwrap();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalPreAppend, 0));
        let err = svc
            .try_apply_batch(&[EdgeUpdate::Insert(1, 4)], &exec)
            .unwrap_err();
        assert!(err.is_simulated_crash(), "{err}");
        exec.clear_fault_plan();
        // Nothing moved: the crashed batch was never acknowledged.
        assert_eq!(svc.generation(), 1);
        let r = svc.try_in_k_core(3, 2, &exec).unwrap();
        assert_eq!(r.generation, 1);
        // The dead "process" refuses all further durable writes.
        assert!(matches!(
            svc.try_apply_batch(&[], &exec).unwrap_err(),
            ServeError::Wal(WalError::Poisoned)
        ));
        let m = exec.take_metrics();
        assert_eq!(m.get_counter("serve.wal_errors").unwrap().value, 1);
        assert_eq!(m.get_counter("fault.crashes").unwrap().value, 1);
    }

    #[test]
    fn checkpoint_crash_still_acknowledges_the_batch() {
        use hcd_par::{CrashPoint, FaultPlan};
        let dir = tempdir();
        let exec = Executor::sequential();
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 1,
        };
        let svc = HcdService::try_new_durable(&triangle_plus_tail(), &dir, cfg, &exec).unwrap();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::CkptPreRename, 0));
        // The batch is WAL-durable and published before the checkpoint
        // dies, so the caller still gets its acknowledgement.
        let resp = svc
            .try_apply_batch(&[EdgeUpdate::Insert(0, 3)], &exec)
            .unwrap();
        assert_eq!(resp.generation, 1);
        assert_eq!(exec.crashes_fired(), 1);
        exec.clear_fault_plan();
        // But the process is dead: no further durable writes.
        assert!(matches!(
            svc.try_apply_batch(&[], &exec).unwrap_err(),
            ServeError::Wal(WalError::Poisoned)
        ));
    }
}
