//! A bounded, sharded, generation-keyed memo cache for expensive
//! query answers.
//!
//! The safety argument is the snapshot discipline: every published
//! [`crate::Snapshot`] is immutable and stamped with a unique,
//! monotonically increasing generation, so an answer computed against
//! generation `g` is valid *forever* — for generation `g`. Keying every
//! entry by `(generation, query)` therefore makes invalidation trivial:
//! a cached value can never be wrong, only stale, and stale generations
//! are dropped wholesale when the writer publishes ([`QueryCache::
//! evict_stale`]). No reader can ever observe a cross-generation
//! answer, because the reader itself chooses the generation it looks
//! up (the one of the snapshot it just loaded).
//!
//! The structure is a fixed array of shards, each a
//! `RwLock<HashMap>` plus a FIFO eviction order. The read path takes
//! one shard read lock (no allocation, no global lock, writers to
//! *other* shards never contend), matching the serving layer's
//! readers-never-wait discipline. Capacity is bounded per shard;
//! inserting past the bound evicts the oldest entries of that shard
//! regardless of generation.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use hcd_graph::VertexId;
use hcd_search::{BestCore, Metric};
use parking_lot::RwLock;

use crate::service::Query;

/// What a cache entry can hold: the two expensive answer shapes.
/// Cheap point queries (membership, position) are never cached — the
/// lookup would cost as much as the answer.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedAnswer {
    /// A [`Query::CoreContaining`] answer (sorted member list).
    Core(Option<Vec<VertexId>>),
    /// A PBKS best-community answer for one metric.
    Best(Option<BestCore>),
}

impl CachedAnswer {
    /// Approximate heap footprint, for the `serve.cache.bytes` gauge.
    fn approx_bytes(&self) -> u64 {
        let payload = match self {
            CachedAnswer::Core(Some(members)) => members.len() * std::mem::size_of::<VertexId>(),
            CachedAnswer::Core(None) => 0,
            CachedAnswer::Best(_) => std::mem::size_of::<BestCore>(),
        };
        (payload + std::mem::size_of::<CacheKey>() + 32) as u64
    }
}

/// The query part of a cache key; the full key is `(generation, this)`.
/// The tenant never appears here because each tenant's service owns its
/// own [`QueryCache`] instance — isolation by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// `CoreContaining(v, k)`.
    Core(VertexId, u32),
    /// Best community under the named metric
    /// ([`hcd_search::Metric::name`]).
    Best(&'static str),
}

impl CacheKey {
    /// The key for a best-community search under `metric`.
    pub fn for_metric(metric: &Metric) -> CacheKey {
        CacheKey::Best(metric.name())
    }

    /// The key caching `q`, if `q`'s answer is worth caching.
    pub fn for_query(q: &Query) -> Option<CacheKey> {
        match *q {
            Query::CoreContaining(v, k) => Some(CacheKey::Core(v, k)),
            _ => None,
        }
    }
}

/// Sizing knobs for a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total entry budget across all shards (rounded up to a multiple
    /// of `shards`). Oldest entries of a full shard are evicted first.
    pub capacity: usize,
    /// Number of independent shards (power of two recommended; clamped
    /// to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            shards: 8,
        }
    }
}

struct Shard {
    map: HashMap<(u64, CacheKey), CachedAnswer>,
    /// Insertion order for FIFO capacity eviction.
    order: VecDeque<(u64, CacheKey)>,
}

/// Point-in-time counter values (cumulative since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Entries dropped (stale-generation sweeps + capacity pressure).
    pub evictions: u64,
    /// Approximate bytes currently held.
    pub bytes: u64,
    /// Entries currently held.
    pub entries: u64,
}

/// The cache itself. See the module docs for the safety argument.
pub struct QueryCache {
    shards: Box<[RwLock<Shard>]>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl QueryCache {
    /// An empty cache sized by `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        let shards = cfg.shards.max(1);
        let per_shard_capacity = cfg.capacity.div_ceil(shards).max(1);
        QueryCache {
            shards: (0..shards)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, generation: u64, key: &CacheKey) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        generation.hash(&mut h);
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `(generation, key)`, ticking the hit/miss statistics.
    /// Takes one shard read lock; never blocks on other shards.
    pub fn get(&self, generation: u64, key: &CacheKey) -> Option<CachedAnswer> {
        let shard = self.shard_for(generation, key).read();
        let found = shard.map.get(&(generation, *key)).cloned();
        drop(shard);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an answer computed against `generation`'s snapshot.
    /// Returns the number of entries evicted for capacity. Re-inserting
    /// an existing key overwrites in place (idempotent for the
    /// deterministic query paths that race on a miss).
    pub fn insert(&self, generation: u64, key: CacheKey, value: CachedAnswer) -> u64 {
        let added = value.approx_bytes();
        let mut evicted = 0u64;
        let mut freed = 0u64;
        {
            let mut shard = self.shard_for(generation, &key).write();
            let full_key = (generation, key);
            match shard.map.insert(full_key, value) {
                None => {
                    shard.order.push_back(full_key);
                    while shard.order.len() > self.per_shard_capacity {
                        let oldest = shard.order.pop_front().expect("len > capacity >= 1");
                        if let Some(old) = shard.map.remove(&oldest) {
                            freed += old.approx_bytes();
                            evicted += 1;
                        }
                    }
                }
                // Overwrite: the order queue already tracks the key;
                // only the byte delta changes.
                Some(old) => freed += old.approx_bytes(),
            }
        }
        self.bytes.fetch_add(added, Ordering::Relaxed);
        let cur = self.bytes.load(Ordering::Relaxed);
        self.bytes.fetch_sub(freed.min(cur), Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Drops every entry whose generation is not `current`. Called by
    /// the writer right after publishing generation `current`; the
    /// sweep is what keeps the cache from accumulating history.
    /// Returns the number of entries dropped.
    pub fn evict_stale(&self, current: u64) -> u64 {
        let mut evicted = 0u64;
        let mut freed = 0u64;
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            if shard.map.is_empty() {
                continue;
            }
            shard.map.retain(|(generation, _), v| {
                let keep = *generation == current;
                if !keep {
                    evicted += 1;
                    freed += v.approx_bytes();
                }
                keep
            });
            shard.order.retain(|(generation, _)| *generation == current);
        }
        let cur = self.bytes.load(Ordering::Relaxed);
        self.bytes.fetch_sub(freed.min(cur), Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Cumulative and point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().map.len() as u64).sum(),
        }
    }

    /// Total entries currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plants an arbitrary entry, bypassing the compute path. This
    /// exists **only** so negative tests can prove the differential
    /// harness detects a poisoned cache (a doctored answer at the
    /// current generation must make the armed/disarmed comparison
    /// fail). Production code never calls it.
    #[doc(hidden)]
    pub fn doctor(&self, generation: u64, key: CacheKey, value: CachedAnswer) {
        self.insert(generation, key, value);
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "QueryCache(entries={}, hits={}, misses={}, evictions={})",
            s.entries, s.hits, s.misses, s.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_key(v: VertexId, k: u32) -> CacheKey {
        CacheKey::Core(v, k)
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = QueryCache::new(CacheConfig::default());
        let val = CachedAnswer::Core(Some(vec![1, 2, 3]));
        assert_eq!(cache.get(7, &core_key(1, 2)), None);
        cache.insert(7, core_key(1, 2), val.clone());
        assert_eq!(cache.get(7, &core_key(1, 2)), Some(val));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn generations_never_alias() {
        let cache = QueryCache::new(CacheConfig::default());
        cache.insert(1, core_key(0, 1), CachedAnswer::Core(Some(vec![0])));
        cache.insert(2, core_key(0, 1), CachedAnswer::Core(Some(vec![0, 1])));
        assert_eq!(
            cache.get(1, &core_key(0, 1)),
            Some(CachedAnswer::Core(Some(vec![0])))
        );
        assert_eq!(
            cache.get(2, &core_key(0, 1)),
            Some(CachedAnswer::Core(Some(vec![0, 1])))
        );
    }

    #[test]
    fn evict_stale_drops_exactly_the_old_generations() {
        let cache = QueryCache::new(CacheConfig::default());
        for v in 0..10 {
            cache.insert(1, core_key(v, 1), CachedAnswer::Core(None));
        }
        for v in 0..4 {
            cache.insert(2, core_key(v, 1), CachedAnswer::Core(None));
        }
        let dropped = cache.evict_stale(2);
        assert_eq!(dropped, 10);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(1, &core_key(0, 1)), None);
        assert!(cache.get(2, &core_key(0, 1)).is_some());
        assert_eq!(cache.stats().evictions, 10);
    }

    #[test]
    fn capacity_bounds_each_shard_fifo() {
        let cache = QueryCache::new(CacheConfig {
            capacity: 8,
            shards: 1,
        });
        for v in 0..20 {
            cache.insert(0, core_key(v, 1), CachedAnswer::Core(Some(vec![v])));
        }
        assert_eq!(cache.len(), 8);
        // The newest entries survive, the oldest were evicted.
        assert!(cache.get(0, &core_key(19, 1)).is_some());
        assert_eq!(cache.get(0, &core_key(0, 1)), None);
        assert_eq!(cache.stats().evictions, 12);
    }

    #[test]
    fn best_answers_cache_per_metric_name() {
        let cache = QueryCache::new(CacheConfig::default());
        let k1 = CacheKey::for_metric(&Metric::AverageDegree);
        let k2 = CacheKey::for_metric(&Metric::Conductance);
        assert_ne!(k1, k2);
        cache.insert(0, k1, CachedAnswer::Best(None));
        assert!(cache.get(0, &k1).is_some());
        assert_eq!(cache.get(0, &k2), None);
    }

    #[test]
    fn point_queries_are_not_cacheable() {
        assert!(CacheKey::for_query(&Query::InKCore(1, 2)).is_none());
        assert!(CacheKey::for_query(&Query::HierarchyPosition(1)).is_none());
        assert!(CacheKey::for_query(&Query::SameKCore(1, 2, 3)).is_none());
        assert_eq!(
            CacheKey::for_query(&Query::CoreContaining(1, 2)),
            Some(CacheKey::Core(1, 2))
        );
    }
}
