//! The batched ingress queue: admission-checked enqueue, batched
//! drain through [`HcdService::try_query_batch`].
//!
//! The queue decouples arrival from execution so the service can
//! answer reads in large single-region batches (amortizing the
//! snapshot load and the parallel-region setup) while shedding excess
//! load *at the door*:
//!
//! * [`IngressQueue::try_enqueue`] is where admission control runs —
//!   an expired deadline or a queue at its watermark is refused with a
//!   typed [`Rejected`] before any snapshot is touched;
//! * [`IngressQueue::try_drain_batch`] pops up to a batch of pending
//!   requests, sheds the ones whose deadline expired while queued, and
//!   answers the rest from **one** snapshot in one `serve.query.batch`
//!   region. Tickets (monotone admission numbers) let callers match
//!   answers back to their requests.

use std::collections::VecDeque;

use hcd_par::{intern, Deadline, Executor, ParError};
use parking_lot::Mutex;

use crate::admission::{AdmissionConfig, Rejected};
use crate::service::{HcdService, Query, QueryAnswer};

/// One admitted, not-yet-drained request.
#[derive(Debug, Clone, Copy)]
struct Pending {
    ticket: u64,
    query: Query,
    deadline: Option<Deadline>,
}

/// Counter names the queue ticks; swapped wholesale per tenant.
#[derive(Debug, Clone, Copy)]
struct IngressNames {
    enqueued: &'static str,
    shed_overloaded: &'static str,
    shed_deadline: &'static str,
    depth: &'static str,
}

impl IngressNames {
    const GLOBAL: IngressNames = IngressNames {
        enqueued: "serve.ingress.enqueued",
        shed_overloaded: "serve.shed.overloaded",
        shed_deadline: "serve.shed.deadline",
        depth: "serve.ingress.depth",
    };

    fn for_tenant(tenant: &str) -> IngressNames {
        IngressNames {
            enqueued: intern(&format!("serve.{tenant}.ingress.enqueued")),
            shed_overloaded: intern(&format!("serve.{tenant}.shed.overloaded")),
            shed_deadline: intern(&format!("serve.{tenant}.shed.deadline")),
            depth: intern(&format!("serve.{tenant}.ingress.depth")),
        }
    }
}

struct QueueState {
    pending: VecDeque<Pending>,
    next_ticket: u64,
}

/// What one drain accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// Generation of the snapshot the batch was answered from (the
    /// current generation when nothing was answered).
    pub generation: u64,
    /// `(ticket, answer)` pairs in admission order.
    pub answered: Vec<(u64, QueryAnswer)>,
    /// Requests dropped at drain time because their deadline expired
    /// while they sat in the queue.
    pub shed_deadline: u64,
}

/// See the module docs.
pub struct IngressQueue {
    state: Mutex<QueueState>,
    cfg: AdmissionConfig,
    names: IngressNames,
}

impl IngressQueue {
    /// A queue using the global (single-tenant) counter names.
    pub fn new(cfg: AdmissionConfig) -> Self {
        IngressQueue {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                next_ticket: 0,
            }),
            cfg,
            names: IngressNames::GLOBAL,
        }
    }

    /// A queue ticking `serve.<tenant>.shed.*` / `.ingress.*` counters.
    pub fn for_tenant(cfg: AdmissionConfig, tenant: &str) -> Self {
        let mut q = Self::new(cfg);
        q.names = IngressNames::for_tenant(tenant);
        q
    }

    /// The configured admission knobs.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Admission control + enqueue. On success returns the monotone
    /// admission ticket. On [`Rejected`], **no work happened**: no
    /// snapshot load, no WAL traffic, no query counter — only the
    /// matching `serve.shed.*` counter ticked.
    pub fn try_enqueue(
        &self,
        query: Query,
        deadline: Option<Deadline>,
        exec: &Executor,
    ) -> Result<u64, Rejected> {
        let deadline = self.cfg.deadline_for(deadline);
        if deadline.as_ref().is_some_and(Deadline::expired) {
            exec.add_counter(self.names.shed_deadline, 1);
            return Err(Rejected::DeadlineExceeded);
        }
        let mut state = self.state.lock();
        let depth = state.pending.len();
        if depth >= self.cfg.watermark {
            drop(state);
            exec.add_counter(self.names.shed_overloaded, 1);
            return Err(Rejected::Overloaded {
                depth,
                watermark: self.cfg.watermark,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.pending.push_back(Pending {
            ticket,
            query,
            deadline,
        });
        let depth_after = state.pending.len() as u64;
        drop(state);
        exec.add_counter(self.names.enqueued, 1);
        exec.gauge(self.names.depth, depth_after);
        Ok(ticket)
    }

    /// Pops up to `max` pending requests, sheds the ones whose
    /// deadline expired while queued, and answers the rest from one
    /// snapshot via [`HcdService::try_query_batch`]. An error leaves
    /// the *drained* requests consumed (their deadline budget is
    /// spent either way) and the rest of the queue intact.
    pub fn try_drain_batch(
        &self,
        svc: &HcdService,
        max: usize,
        exec: &Executor,
    ) -> Result<DrainReport, ParError> {
        let drained: Vec<Pending> = {
            let mut state = self.state.lock();
            let take = max.min(state.pending.len());
            state.pending.drain(..take).collect()
        };
        let mut live: Vec<Pending> = Vec::with_capacity(drained.len());
        let mut shed_deadline = 0u64;
        for p in drained {
            if p.deadline.as_ref().is_some_and(Deadline::expired) {
                shed_deadline += 1;
            } else {
                live.push(p);
            }
        }
        if shed_deadline > 0 {
            exec.add_counter(self.names.shed_deadline, shed_deadline);
        }
        if live.is_empty() {
            return Ok(DrainReport {
                generation: svc.generation(),
                answered: Vec::new(),
                shed_deadline,
            });
        }
        let queries: Vec<Query> = live.iter().map(|p| p.query).collect();
        let batch = svc.try_query_batch(&queries, exec)?;
        let answered = live.iter().map(|p| p.ticket).zip(batch.answers).collect();
        Ok(DrainReport {
            generation: batch.generation,
            answered,
            shed_deadline,
        })
    }
}

impl std::fmt::Debug for IngressQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IngressQueue(depth={}, watermark={})",
            self.depth(),
            self.cfg.watermark
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;
    use std::time::Duration;

    fn svc(exec: &Executor) -> HcdService {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        HcdService::new(&g, exec)
    }

    #[test]
    fn enqueue_drain_round_trips_in_admission_order() {
        let exec = Executor::sequential();
        let svc = svc(&exec);
        let q = IngressQueue::new(AdmissionConfig::default());
        let t0 = q.try_enqueue(Query::InKCore(0, 2), None, &exec).unwrap();
        let t1 = q.try_enqueue(Query::InKCore(3, 2), None, &exec).unwrap();
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(q.depth(), 2);
        let r = q.try_drain_batch(&svc, 16, &exec).unwrap();
        assert_eq!(q.depth(), 0);
        assert_eq!(r.shed_deadline, 0);
        assert_eq!(
            r.answered,
            vec![
                (0, QueryAnswer::InKCore(true)),
                (1, QueryAnswer::InKCore(false)),
            ]
        );
    }

    #[test]
    fn watermark_sheds_with_typed_overload() {
        let exec = Executor::sequential().with_metrics();
        let q = IngressQueue::new(AdmissionConfig {
            watermark: 2,
            default_deadline: None,
        });
        q.try_enqueue(Query::InKCore(0, 1), None, &exec).unwrap();
        q.try_enqueue(Query::InKCore(1, 1), None, &exec).unwrap();
        let err = q
            .try_enqueue(Query::InKCore(2, 1), None, &exec)
            .unwrap_err();
        assert_eq!(
            err,
            Rejected::Overloaded {
                depth: 2,
                watermark: 2
            }
        );
        let m = exec.take_metrics();
        assert_eq!(m.get_counter("serve.shed.overloaded").unwrap().value, 1);
        assert_eq!(m.get_counter("serve.ingress.enqueued").unwrap().value, 2);
        // The shed request never became a query.
        assert!(m.get_counter("serve.queries").is_none());
    }

    #[test]
    fn expired_deadlines_shed_at_the_door_and_at_drain() {
        let exec = Executor::sequential().with_metrics();
        let svc = svc(&exec);
        let q = IngressQueue::new(AdmissionConfig::default());
        let expired = Deadline::from_now(Duration::ZERO);
        assert_eq!(
            q.try_enqueue(Query::InKCore(0, 1), Some(expired), &exec),
            Err(Rejected::DeadlineExceeded)
        );
        // Admit with a deadline that expires while queued.
        let soon = Deadline::from_now(Duration::from_millis(1));
        q.try_enqueue(Query::InKCore(0, 1), Some(soon), &exec)
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let r = q.try_drain_batch(&svc, 16, &exec).unwrap();
        assert_eq!(r.shed_deadline, 1);
        assert!(r.answered.is_empty());
        let m = exec.take_metrics();
        assert_eq!(m.get_counter("serve.shed.deadline").unwrap().value, 2);
    }

    #[test]
    fn tenant_queues_tick_namespaced_counters() {
        let exec = Executor::sequential().with_metrics();
        let q = IngressQueue::for_tenant(
            AdmissionConfig {
                watermark: 1,
                default_deadline: None,
            },
            "acme",
        );
        q.try_enqueue(Query::InKCore(0, 1), None, &exec).unwrap();
        let _ = q.try_enqueue(Query::InKCore(1, 1), None, &exec);
        let m = exec.take_metrics();
        assert_eq!(
            m.get_counter("serve.acme.ingress.enqueued").unwrap().value,
            1
        );
        assert_eq!(
            m.get_counter("serve.acme.shed.overloaded").unwrap().value,
            1
        );
        assert!(m.get_counter("serve.shed.overloaded").is_none());
    }
}
