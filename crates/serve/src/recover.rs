//! Crash recovery: newest valid checkpoint + WAL suffix replay.
//!
//! [`HcdService::recover`] rebuilds a serving state from a durability
//! directory:
//!
//! 1. load the newest checkpoint that passes its checksum (falling back
//!    to older ones when a newer file is damaged);
//! 2. scan the WAL — a torn tail (the kill-mid-write shape) is
//!    truncated away with a warning in the report, while mid-log
//!    corruption (a complete frame failing its checksum) is a hard
//!    error: that is damage, not a crash artifact, and guessing would
//!    risk serving wrong answers;
//! 3. replay every record with `seq` greater than the checkpoint's
//!    through [`DynamicCore::apply_batch`], checking the sequence
//!    numbers form the contiguous suffix the ack protocol guarantees;
//! 4. rebuild the snapshot (PHCD) and publish it at generation
//!    `final_seq`, with the WAL reopened for appending where the
//!    pre-crash log left off.
//!
//! Because a batch is acknowledged only after its WAL record is fsynced
//! (under [`FsyncPolicy::Always`](crate::wal::FsyncPolicy)), the
//! recovered state is bit-identical — same graph, same coreness, same
//! canonical hierarchy — to the state at the last acknowledgement, as
//! the kill-and-recover harness asserts via
//! [`Snapshot::fingerprint`](crate::Snapshot::fingerprint).

use std::path::{Path, PathBuf};

use hcd_dynamic::DynamicCore;
use hcd_par::{Executor, ParError};

use crate::checkpoint::load_newest_valid;
use crate::service::{DurabilityConfig, Durable, HcdService};
use crate::snapshot::Snapshot;
use crate::wal::{scan_wal_file, TailStatus, WalWriter, WAL_FILE_NAME};

/// What a recovery did, for logging and for the CLI's exit-code policy
/// (recovered-but-truncated is a warning, not a failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// Newer checkpoint files skipped because they failed validation.
    pub checkpoints_skipped: usize,
    /// Valid records found in the log (including ones at or below the
    /// checkpoint, which need no replay).
    pub wal_records: usize,
    /// Records actually replayed (sequence above the checkpoint's).
    pub replayed: usize,
    /// Batch sequence number of the recovered state; also its published
    /// generation.
    pub final_seq: u64,
    /// Bytes of torn tail truncated from the log (0 for a clean log).
    pub truncated_bytes: u64,
    /// Total WAL bytes the recovery scan read (valid frames plus any
    /// torn tail it classified).
    pub bytes_scanned: u64,
    /// Wall-clock time of the whole recovery (checkpoint load + scan +
    /// replay + rebuild + publish), in nanoseconds.
    pub wall_ns: u64,
}

impl RecoveryReport {
    /// Whether the log ended in a torn record that recovery cut away —
    /// expected after a mid-write kill, worth surfacing, not an error.
    pub fn tail_was_truncated(&self) -> bool {
        self.truncated_bytes > 0
    }
}

/// Why recovery refused a durability directory.
#[derive(Debug)]
pub enum RecoverError {
    /// No checkpoint file in the directory passed validation.
    NoCheckpoint(PathBuf),
    /// A complete WAL frame failed its checksum or decoded to garbage
    /// mid-log: corruption, not a torn write. Nothing is replayed.
    CorruptWal {
        /// Offset of the offending frame.
        offset: u64,
        /// Scanner's classification.
        reason: String,
    },
    /// Replayable records did not form a contiguous sequence — some
    /// acknowledged batch is missing from the log.
    SequenceGap {
        /// The sequence number replay needed next.
        expected: u64,
        /// The sequence number the log presented.
        found: u64,
    },
    /// A real IO error while reading the directory.
    Io(std::io::Error),
    /// Rebuilding the snapshot from the recovered state failed.
    Par(ParError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::NoCheckpoint(dir) => {
                write!(f, "no valid checkpoint in {}", dir.display())
            }
            RecoverError::CorruptWal { offset, reason } => {
                write!(f, "corrupt WAL record at byte {offset}: {reason}")
            }
            RecoverError::SequenceGap { expected, found } => write!(
                f,
                "WAL sequence gap: expected batch {expected}, found {found}"
            ),
            RecoverError::Io(e) => write!(f, "recovery io error: {e}"),
            RecoverError::Par(e) => write!(f, "recovery rebuild failed: {e}"),
        }
    }
}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

impl From<ParError> for RecoverError {
    fn from(e: ParError) -> Self {
        RecoverError::Par(e)
    }
}

impl HcdService {
    /// Recovers a service from the durability directory `dir` (see the
    /// module docs for the exact procedure). The returned service is
    /// durable again, appending to the recovered log under `cfg`.
    pub fn recover<P: AsRef<Path>>(
        dir: P,
        cfg: DurabilityConfig,
        exec: &Executor,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let started = std::time::Instant::now();
        let dir = dir.as_ref().to_path_buf();
        let (checkpoint_seq, graph, checkpoints_skipped) =
            load_newest_valid(&dir)?.ok_or_else(|| RecoverError::NoCheckpoint(dir.clone()))?;

        let wal_path = dir.join(WAL_FILE_NAME);
        let scan = scan_wal_file(&wal_path)?;
        let truncated_bytes = match scan.tail {
            TailStatus::Clean => 0,
            TailStatus::TornTail { torn_bytes, .. } => torn_bytes,
            TailStatus::Corrupt { offset, ref reason } => {
                return Err(RecoverError::CorruptWal {
                    offset,
                    reason: reason.clone(),
                })
            }
        };

        let mut writer = DynamicCore::from_csr(&graph);
        writer.set_seq(checkpoint_seq);
        let mut replayed = 0usize;
        for record in &scan.records {
            if record.seq <= checkpoint_seq {
                continue;
            }
            if record.seq != writer.seq() + 1 {
                return Err(RecoverError::SequenceGap {
                    expected: writer.seq() + 1,
                    found: record.seq,
                });
            }
            let report = writer.apply_batch(&record.updates);
            debug_assert_eq!(report.seq, record.seq);
            replayed += 1;
        }
        let final_seq = writer.seq();

        let csr = writer.graph().to_csr();
        let cores = writer.decomposition();
        let hcd = hcd_core::try_phcd(&csr, &cores, exec)?;
        let snapshot = Snapshot::from_parts(csr, cores, hcd, final_seq);

        // Reopen the log for appending; open_at also performs the
        // truncate-at-last-valid-record repair for a torn tail.
        let wal = WalWriter::open_at(&wal_path, cfg.fsync, scan.valid_len())?;
        let bytes_scanned = scan.valid_len() + truncated_bytes;
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let report = RecoveryReport {
            checkpoint_seq,
            checkpoints_skipped,
            wal_records: scan.records.len(),
            replayed,
            final_seq,
            truncated_bytes,
            bytes_scanned,
            wall_ns,
        };
        // Surface the report in the metrics snapshot too
        // (`serve.recovery.*`). Gauges rather than sums so a legitimate
        // zero (nothing replayed, no checkpoints damaged) still shows
        // up as an explicit counter row.
        exec.gauge("serve.recovery.records_replayed", replayed as u64);
        exec.gauge("serve.recovery.bytes_scanned", bytes_scanned);
        exec.gauge(
            "serve.recovery.checkpoints_skipped",
            checkpoints_skipped as u64,
        );
        exec.gauge("serve.recovery.wall_ns", wall_ns);
        exec.observe_ns("serve.recover", wall_ns);
        let durable = Durable {
            dir,
            wal,
            cfg,
            last_checkpoint_seq: checkpoint_seq,
            poisoned: false,
        };
        Ok((
            HcdService::from_recovered(snapshot, writer, durable),
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeError;
    use crate::wal::{encode_record, FsyncPolicy, WalError};
    use hcd_dynamic::EdgeUpdate;
    use hcd_graph::GraphBuilder;
    use hcd_par::{CrashPoint, FaultPlan};

    fn seed() -> hcd_graph::CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
            .build()
    }

    fn tempdir() -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("hcd-recover-test-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 2,
        }
    }

    #[test]
    fn clean_shutdown_recovers_bit_identically() {
        let dir = tempdir();
        let exec = Executor::sequential();
        let svc = HcdService::try_new_durable(&seed(), &dir, cfg(), &exec).unwrap();
        for i in 0..5u32 {
            svc.try_apply_batch(
                &[EdgeUpdate::Insert(i, i + 7), EdgeUpdate::Remove(0, 1)],
                &exec,
            )
            .unwrap();
        }
        let live_fp = svc.snapshot().fingerprint();
        let live_gen = svc.generation();
        drop(svc);

        let (rec, report) = HcdService::recover(&dir, cfg(), &exec).unwrap();
        assert_eq!(rec.snapshot().fingerprint(), live_fp);
        assert_eq!(rec.generation(), live_gen);
        assert!(!report.tail_was_truncated());
        assert_eq!(report.final_seq, 5);
        assert_eq!(report.checkpoint_seq, 4, "checkpoint_every = 2");
        assert_eq!(report.replayed, 1, "only the post-checkpoint suffix");
        assert_eq!(report.wal_records, 5, "the log is never truncated mid-run");
        rec.snapshot().validate().unwrap();

        // The recovered service keeps working durably: epochs continue,
        // new appends land after the old ones.
        let resp = rec
            .try_apply_batch(&[EdgeUpdate::Insert(1, 9)], &exec)
            .unwrap();
        assert_eq!(resp.generation, live_gen + 1);
        assert_eq!(resp.value.seq, 6);
    }

    #[test]
    fn mid_record_crash_recovers_to_the_last_ack_with_a_warning() {
        let dir = tempdir();
        let exec = Executor::sequential();
        let svc = HcdService::try_new_durable(&seed(), &dir, cfg(), &exec).unwrap();
        svc.try_apply_batch(&[EdgeUpdate::Insert(0, 5)], &exec)
            .unwrap();
        let acked_fp = svc.snapshot().fingerprint();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalMidRecord, 0));
        let err = svc
            .try_apply_batch(&[EdgeUpdate::Insert(1, 6)], &exec)
            .unwrap_err();
        assert!(matches!(err, ServeError::Wal(WalError::Crashed(_))));
        exec.clear_fault_plan();
        drop(svc);

        let (rec, report) = HcdService::recover(&dir, cfg(), &exec).unwrap();
        assert!(report.tail_was_truncated());
        assert_eq!(report.final_seq, 1);
        assert_eq!(rec.snapshot().fingerprint(), acked_fp);
        // The truncation is real: a second recovery sees a clean log.
        drop(rec);
        let (_, report2) = HcdService::recover(&dir, cfg(), &exec).unwrap();
        assert!(!report2.tail_was_truncated());
    }

    #[test]
    fn corrupt_mid_log_record_is_a_hard_error() {
        let dir = tempdir();
        let exec = Executor::sequential();
        let svc = HcdService::try_new_durable(&seed(), &dir, cfg(), &exec).unwrap();
        for i in 0..3u32 {
            svc.try_apply_batch(&[EdgeUpdate::Insert(i, i + 5)], &exec)
                .unwrap();
        }
        drop(svc);
        // Flip one payload byte of the first record.
        let wal_path = dir.join(WAL_FILE_NAME);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes[10] ^= 0x20;
        std::fs::write(&wal_path, &bytes).unwrap();
        let err = HcdService::recover(&dir, cfg(), &exec).unwrap_err();
        assert!(
            matches!(err, RecoverError::CorruptWal { offset: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn sequence_gap_is_rejected() {
        let dir = tempdir();
        let exec = Executor::sequential();
        drop(HcdService::try_new_durable(&seed(), &dir, cfg(), &exec).unwrap());
        // Doctor a log that skips batch 1: acked work is missing.
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(2, &[EdgeUpdate::Insert(0, 5)]));
        std::fs::write(dir.join(WAL_FILE_NAME), &log).unwrap();
        let err = HcdService::recover(&dir, cfg(), &exec).unwrap_err();
        assert!(
            matches!(
                err,
                RecoverError::SequenceGap {
                    expected: 1,
                    found: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn empty_directory_has_nothing_to_recover() {
        let dir = tempdir();
        let err = HcdService::recover(&dir, cfg(), &Executor::sequential()).unwrap_err();
        assert!(matches!(err, RecoverError::NoCheckpoint(_)), "{err}");
    }

    #[test]
    fn stale_header_checkpoint_falls_back_to_the_previous_one() {
        let dir = tempdir();
        let exec = Executor::sequential();
        let svc = HcdService::try_new_durable(&seed(), &dir, cfg(), &exec).unwrap();
        for i in 0..2u32 {
            svc.try_apply_batch(&[EdgeUpdate::Insert(i, i + 5)], &exec)
                .unwrap();
        }
        drop(svc);
        // Doctor the newest checkpoint's magic to an unknown version.
        let newest = dir.join(crate::checkpoint::checkpoint_file_name(2));
        let mut bytes = std::fs::read(&newest).unwrap();
        bytes[7] = b'9';
        std::fs::write(&newest, &bytes).unwrap();
        let (rec, report) = HcdService::recover(&dir, cfg(), &exec).unwrap();
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.checkpoints_skipped, 1);
        // The whole log replays, landing on the same state.
        assert_eq!(report.replayed, 2);
        assert_eq!(report.final_seq, 2);
        rec.snapshot().validate().unwrap();
    }
}
