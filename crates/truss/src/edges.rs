//! Dense edge ids over a CSR graph.

use hcd_graph::{CsrGraph, VertexId};

/// Assigns each undirected edge a dense id in `0..m`, in the order
/// [`CsrGraph::edges`] yields them (ascending `(u, v)` with `u < v`), and
/// answers `eid(u, v)` in `O(log d)` via binary search in the smaller
/// endpoint's adjacency suffix.
pub struct EdgeIndex {
    /// `edge_start[v]` = number of edges `(a, b)` with `a < v` — the id
    /// of the first edge whose lower endpoint is `v`.
    edge_start: Vec<u32>,
    /// The edge list itself, indexed by edge id.
    endpoints: Vec<(VertexId, VertexId)>,
}

impl EdgeIndex {
    /// Builds the index in `O(n + m)`.
    pub fn new(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut edge_start = Vec::with_capacity(n + 1);
        edge_start.push(0u32);
        let mut endpoints = Vec::with_capacity(g.num_edges());
        for v in 0..n as VertexId {
            let mut count = 0u32;
            for &u in g.neighbors(v) {
                if u > v {
                    endpoints.push((v, u));
                    count += 1;
                }
            }
            edge_start.push(edge_start.last().unwrap() + count);
        }
        EdgeIndex {
            edge_start,
            endpoints,
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Endpoints `(u, v)` with `u < v` of edge `id`.
    #[inline]
    pub fn endpoints(&self, id: u32) -> (VertexId, VertexId) {
        self.endpoints[id as usize]
    }

    /// The id of edge `{a, b}`, which must exist in `g`.
    #[inline]
    pub fn eid(&self, g: &CsrGraph, a: VertexId, b: VertexId) -> u32 {
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        let adj = g.neighbors(u);
        // Edges with lower endpoint u are its neighbors > u, in order.
        let first_greater = adj.partition_point(|&w| w <= u);
        let pos = adj[first_greater..]
            .binary_search(&v)
            .expect("edge must exist");
        self.edge_start[u as usize] + pos as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    #[test]
    fn ids_are_dense_and_ordered() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (1, 2), (2, 3)])
            .build();
        let idx = EdgeIndex::new(&g);
        assert_eq!(idx.len(), 4);
        let expected: Vec<_> = g.edges().collect();
        for (i, &(u, v)) in expected.iter().enumerate() {
            assert_eq!(idx.endpoints(i as u32), (u, v));
            assert_eq!(idx.eid(&g, u, v), i as u32);
            assert_eq!(idx.eid(&g, v, u), i as u32);
        }
    }

    #[test]
    fn roundtrip_on_denser_graph() {
        let mut b = GraphBuilder::new();
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                if (u + v) % 3 != 0 {
                    b = b.edge(u, v);
                }
            }
        }
        let g = b.build();
        let idx = EdgeIndex::new(&g);
        assert_eq!(idx.len(), g.num_edges());
        for (i, (u, v)) in g.edges().enumerate() {
            assert_eq!(idx.eid(&g, u, v), i as u32);
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().min_vertices(3).build();
        let idx = EdgeIndex::new(&g);
        assert!(idx.is_empty());
    }
}
