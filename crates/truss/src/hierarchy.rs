//! Hierarchical truss decomposition, constructed in parallel with the
//! PHCD paradigm (paper §VI).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use parking_lot::Mutex;

use hcd_graph::{CsrGraph, FxHashMap};
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};
use hcd_unionfind::{ConcurrentPivotUnionFind, UnionFindPivot};

use crate::decompose::TrussDecomposition;
use crate::edges::EdgeIndex;

/// Sentinel for "no node".
pub const NO_NODE: u32 = u32::MAX;

/// One k-truss tree node: the edges of trussness `k` within one
/// (triangle-connected) k-truss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrussNode {
    /// The trussness level.
    pub k: u32,
    /// Edge ids of trussness `k` in this k-truss.
    pub edges: Vec<u32>,
    /// Parent node id, or [`NO_NODE`].
    pub parent: u32,
    /// Children node ids.
    pub children: Vec<u32>,
}

/// The hierarchical truss decomposition: a forest over k-trusses, with
/// `tid(e)` mapping each edge to its node. Mirrors `hcd_core::Hcd`, with
/// edges in the role of vertices.
#[derive(Debug, Clone)]
pub struct Htd {
    nodes: Vec<TrussNode>,
    tid: Vec<u32>,
}

impl Htd {
    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node with id `i`.
    pub fn node(&self, i: u32) -> &TrussNode {
        &self.nodes[i as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TrussNode] {
        &self.nodes
    }

    /// The node containing edge `e`.
    pub fn tid(&self, e: u32) -> u32 {
        self.tid[e as usize]
    }

    /// All edge ids of the k-truss rooted at node `i` (the node's own
    /// edges plus its descendants').
    pub fn subtree_edges(&self, i: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(x) = stack.pop() {
            let node = &self.nodes[x as usize];
            out.extend_from_slice(&node.edges);
            stack.extend_from_slice(&node.children);
        }
        out
    }

    /// Canonical form for structural comparison (ids are
    /// algorithm-dependent): nodes sorted by `(k, min edge)`, edge lists
    /// sorted, parents as canonical positions.
    pub fn canonicalize(&self) -> Vec<(u32, Vec<u32>, Option<u32>)> {
        let mut order: Vec<u32> = (0..self.nodes.len() as u32).collect();
        let key = |i: u32| {
            let n = &self.nodes[i as usize];
            (n.k, n.edges.iter().copied().min().unwrap_or(u32::MAX))
        };
        order.sort_by_key(|&i| key(i));
        let mut new_id = vec![0u32; self.nodes.len()];
        for (p, &old) in order.iter().enumerate() {
            new_id[old as usize] = p as u32;
        }
        order
            .iter()
            .map(|&old| {
                let n = &self.nodes[old as usize];
                let mut edges = n.edges.clone();
                edges.sort_unstable();
                let parent = (n.parent != NO_NODE).then(|| new_id[n.parent as usize]);
                (n.k, edges, parent)
            })
            .collect()
    }
}

/// Enumerates, for edge `e = (u, v)` of trussness `t(e) = k`, every
/// triangle through `e` whose other two edges have trussness `>= k`,
/// invoking `f(e1, e2)` on them.
fn level_triangles<F: FnMut(u32, u32)>(
    g: &CsrGraph,
    idx: &EdgeIndex,
    truss: &[u32],
    e: u32,
    k: u32,
    mut f: F,
) {
    let (u, v) = idx.endpoints(e);
    let (a, b) = if g.degree(u) <= g.degree(v) {
        (u, v)
    } else {
        (v, u)
    };
    for &w in g.neighbors(a) {
        if w == b || !g.has_edge(w, b) {
            continue;
        }
        let e1 = idx.eid(g, a, w);
        let e2 = idx.eid(g, b, w);
        if truss[e1 as usize] >= k && truss[e2 as usize] >= k {
            f(e1, e2);
        }
    }
}

/// PHTD: parallel hierarchical truss decomposition — the PHCD paradigm
/// over edges.
///
/// From `k = tmax` down to 2, the k-shell of *edges* is added; an edge
/// connects to the existing structure through triangles whose other two
/// edges have trussness `>= k` (each such triangle is discovered exactly
/// once, at its minimum-trussness edge). A concurrent union-find with
/// pivot (minimum `(trussness, id)` edge) groups shell edges into new
/// tree nodes and resolves parents, exactly as PHCD's four steps do for
/// vertices.
pub fn phtd(g: &CsrGraph, idx: &EdgeIndex, truss: &TrussDecomposition, exec: &Executor) -> Htd {
    match try_phtd(g, idx, truss, exec) {
        Ok(htd) => htd,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`phtd`]: the triangle-enumeration passes poll the
/// executor's cancellation checkpoint at a coarse adjacency-work stride,
/// so cancel tokens and deadlines abort the construction promptly (see
/// the `hcd_par` failure model).
pub fn try_phtd(
    g: &CsrGraph,
    idx: &EdgeIndex,
    truss: &TrussDecomposition,
    exec: &Executor,
) -> Result<Htd, ParError> {
    let m = idx.len();
    if m == 0 {
        return Ok(Htd {
            nodes: Vec::new(),
            tid: Vec::new(),
        });
    }
    let t = truss.as_slice();

    // Edge rank: (trussness, id) ascending — the pivot order.
    let shells = truss.shells();
    let mut erank = vec![0u32; m];
    {
        let mut r = 0u32;
        for shell in &shells {
            for &e in shell {
                erank[e as usize] = r;
                r += 1;
            }
        }
    }

    let uf = ConcurrentPivotUnionFind::new(erank);
    let tid: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(NO_NODE)).collect();
    let in_kpc: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(false)).collect();
    let mut node_k: Vec<u32> = Vec::new();
    let mut node_edges: Vec<Mutex<Vec<u32>>> = Vec::new();
    let mut node_parent: Vec<AtomicU32> = Vec::new();
    let mut node_children: Vec<Mutex<Vec<u32>>> = Vec::new();

    for k in (2..=truss.tmax()).rev() {
        let shell = match shells.get(k as usize) {
            Some(s) if !s.is_empty() => s,
            _ => continue,
        };

        // Triangle enumeration for edge e scans the adjacency of its
        // lower-degree endpoint — the stride unit for checkpoint polls.
        let tri_work = |e: u32| {
            let (u, v) = idx.endpoints(e);
            g.degree(u).min(g.degree(v)) + 1
        };

        // Step 1: pivots of adjacent k'-trusses (k' > k).
        let kpc_parts = exec
            .region("truss.kpc")
            .try_map_chunks(shell.len(), |_, range| {
                let mut local = Vec::new();
                let mut since = 0usize;
                for &e in &shell[range] {
                    level_triangles(g, idx, t, e, k, |e1, e2| {
                        for other in [e1, e2] {
                            if t[other as usize] > k {
                                let pvt = uf.get_pivot(other);
                                if !in_kpc[pvt as usize].swap(true, Ordering::AcqRel) {
                                    local.push(pvt);
                                }
                            }
                        }
                    });
                    since += tri_work(e);
                    if since >= CHECKPOINT_STRIDE {
                        exec.checkpoint()?;
                        since = 0;
                    }
                }
                Ok(local)
            })?;
        let kpc_pivot: Vec<u32> = kpc_parts.into_iter().flatten().collect();

        // Step 2: union each shell edge with its co-triangle edges of
        // trussness >= k.
        exec.region("truss.union").try_for_each_chunk(
            shell.len(),
            || (),
            |_, _, range| {
                let mut since = 0usize;
                for &e in &shell[range] {
                    level_triangles(g, idx, t, e, k, |e1, e2| {
                        uf.union(e, e1);
                        uf.union(e, e2);
                    });
                    since += tri_work(e);
                    if since >= CHECKPOINT_STRIDE {
                        exec.checkpoint()?;
                        since = 0;
                    }
                }
                Ok(())
            },
        )?;

        // Step 3: group shell edges into nodes by pivot.
        let mut pivot_of: Vec<u32> = vec![0; shell.len()];
        {
            struct SendPtr(*mut u32);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let out = SendPtr(pivot_of.as_mut_ptr());
            let fresh_parts =
                exec.region("truss.fresh")
                    .try_map_chunks(shell.len(), |_, range| {
                        let _ = &out;
                        let mut fresh = Vec::new();
                        let mut since = 0usize;
                        for i in range {
                            let pvt = uf.get_pivot(shell[i]);
                            // SAFETY: disjoint slots.
                            unsafe { *out.0.add(i) = pvt };
                            if tid[pvt as usize]
                                .compare_exchange(
                                    NO_NODE,
                                    NO_NODE - 1,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                fresh.push(pvt);
                            }
                            since += 1;
                            if since >= CHECKPOINT_STRIDE {
                                exec.checkpoint()?;
                                since = 0;
                            }
                        }
                        Ok(fresh)
                    })?;
            let mut fresh: Vec<u32> = fresh_parts.into_iter().flatten().collect();
            fresh.sort_unstable();
            for pvt in fresh {
                let id = node_k.len() as u32;
                node_k.push(k);
                node_edges.push(Mutex::new(Vec::new()));
                node_parent.push(AtomicU32::new(NO_NODE));
                node_children.push(Mutex::new(Vec::new()));
                tid[pvt as usize].store(id, Ordering::Release);
            }
        }
        exec.region("truss.assign").try_for_each_chunk(
            shell.len(),
            FxHashMap::<u32, Vec<u32>>::default,
            |_, groups, range| {
                let mut since = 0usize;
                for i in range.clone() {
                    let e = shell[i];
                    let id = tid[pivot_of[i] as usize].load(Ordering::Acquire);
                    tid[e as usize].store(id, Ordering::Release);
                    groups.entry(id).or_default().push(e);
                    since += 1;
                    if since >= CHECKPOINT_STRIDE {
                        exec.checkpoint()?;
                        since = 0;
                    }
                }
                for (id, mut es) in groups.drain() {
                    node_edges[id as usize].lock().append(&mut es);
                }
                Ok(())
            },
        )?;

        // Step 4: parents.
        exec.region("truss.parents").try_for_each_chunk(
            kpc_pivot.len(),
            || (),
            |_, _, range| {
                let mut since = 0usize;
                for &pv in &kpc_pivot[range] {
                    in_kpc[pv as usize].store(false, Ordering::Relaxed);
                    let ch = tid[pv as usize].load(Ordering::Acquire);
                    let pa = tid[uf.get_pivot(pv) as usize].load(Ordering::Acquire);
                    node_parent[ch as usize].store(pa, Ordering::Release);
                    node_children[pa as usize].lock().push(ch);
                    since += 1;
                    if since >= CHECKPOINT_STRIDE {
                        exec.checkpoint()?;
                        since = 0;
                    }
                }
                Ok(())
            },
        )?;
    }

    let mut nodes = Vec::with_capacity(node_k.len());
    for i in 0..node_k.len() {
        let mut edges = std::mem::take(&mut *node_edges[i].lock());
        edges.sort_unstable();
        let mut children = std::mem::take(&mut *node_children[i].lock());
        children.sort_unstable();
        nodes.push(TrussNode {
            k: node_k[i],
            edges,
            parent: node_parent[i].load(Ordering::Acquire),
            children,
        });
    }
    let tid = tid.into_iter().map(AtomicU32::into_inner).collect();
    Ok(Htd { nodes, tid })
}

/// Brute-force HTD from the definitions: per level, connected components
/// of the edge set `{e : t(e) >= k}` under triangle connectivity; a node
/// per component with a non-empty k-slice; parents by containment at the
/// nearest lower populated level. Test oracle.
pub fn naive_htd(g: &CsrGraph, idx: &EdgeIndex, truss: &TrussDecomposition) -> Htd {
    let m = idx.len();
    let t = truss.as_slice();
    let tmax = truss.tmax();
    let mut labels_per_k: Vec<Vec<u32>> = Vec::new();
    for k in 0..=tmax {
        // BFS over edges with trussness >= k via shared level-triangles.
        let mut labels = vec![u32::MAX; m];
        let mut count = 0u32;
        for s in 0..m as u32 {
            if labels[s as usize] != u32::MAX || t[s as usize] < k {
                continue;
            }
            let mut queue = vec![s];
            labels[s as usize] = count;
            while let Some(e) = queue.pop() {
                level_triangles(g, idx, t, e, k, |e1, e2| {
                    for other in [e1, e2] {
                        if labels[other as usize] == u32::MAX {
                            labels[other as usize] = count;
                            queue.push(other);
                        }
                    }
                });
            }
            count += 1;
        }
        labels_per_k.push(labels);
    }

    let mut node_of: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    let mut nodes: Vec<TrussNode> = Vec::new();
    let mut rep: Vec<u32> = Vec::new();
    let mut tid = vec![NO_NODE; m];
    for e in 0..m as u32 {
        let k = t[e as usize];
        let comp = labels_per_k[k as usize][e as usize];
        let id = *node_of.entry((k, comp)).or_insert_with(|| {
            nodes.push(TrussNode {
                k,
                edges: Vec::new(),
                parent: NO_NODE,
                children: Vec::new(),
            });
            rep.push(e);
            (nodes.len() - 1) as u32
        });
        nodes[id as usize].edges.push(e);
        tid[e as usize] = id;
    }
    for i in 0..nodes.len() {
        let k = nodes[i].k;
        let e = rep[i];
        for kp in (0..k).rev() {
            let l = labels_per_k[kp as usize][e as usize];
            if let Some(&pid) = node_of.get(&(kp, l)) {
                nodes[i].parent = pid;
                nodes[pid as usize].children.push(i as u32);
                break;
            }
        }
    }
    Htd { nodes, tid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::truss_decomposition;
    use hcd_graph::GraphBuilder;

    fn check(g: &CsrGraph) {
        let (idx, td) = truss_decomposition(g);
        let truth = naive_htd(g, &idx, &td).canonicalize();
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(3),
        ] {
            let got = phtd(g, &idx, &td, &exec);
            assert_eq!(got.canonicalize(), truth, "mode {}", exec.mode_name());
        }
    }

    #[test]
    fn two_cliques_sharing_an_edge() {
        // K4 on {0..4} and K4 on {2,3,4,5} share the edge (2,3): one
        // 4-truss each... actually sharing a triangle merges them at k=4?
        // The oracle decides; PHTD must match it.
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .edges([(2, 4), (3, 4), (2, 5), (3, 5), (4, 5)])
            .build();
        check(&g);
    }

    #[test]
    fn nested_truss_levels() {
        // K5 with a triangle fringe and a tree tail: trussness 5, 3, 2.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        let g = b
            .edges([(4, 5), (5, 6), (6, 4)]) // fringe triangle
            .edges([(6, 7), (7, 8)]) // tail
            .build();
        check(&g);
        let (idx, td) = truss_decomposition(&g);
        let h = phtd(&g, &idx, &td, &Executor::sequential());
        // Levels present: 5 (K5), 3 (fringe triangle), and two singleton
        // level-2 nodes (the tail edges are not triangle-connected).
        let mut ks: Vec<u32> = h.nodes().iter().map(|n| n.k).collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![2, 2, 3, 5]);
        // The K5 node's parent chain reaches the level-2 root.
        let k5 = (0..h.num_nodes() as u32)
            .find(|&i| h.node(i).k == 5)
            .unwrap();
        assert_eq!(h.subtree_edges(k5).len(), 10);
    }

    #[test]
    fn disconnected_trusses() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0)])
            .edges([(10, 11), (11, 12), (12, 10)])
            .build();
        check(&g);
    }

    #[test]
    fn triangle_free_graph_single_level() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .build();
        let (idx, td) = truss_decomposition(&g);
        let h = phtd(&g, &idx, &td, &Executor::sequential());
        // All edges trussness 2; triangle connectivity leaves each edge
        // isolated -> one node per edge.
        assert_eq!(h.num_nodes(), idx.len());
        check(&g);
    }

    #[test]
    fn random_graphs_match_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        for case in 0..15 {
            let n = rng.gen_range(5..16u32);
            let mut b = GraphBuilder::new().min_vertices(n as usize);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.45) {
                        b = b.edge(u, v);
                    }
                }
            }
            let g = b.build();
            let (idx, td) = truss_decomposition(&g);
            let truth = naive_htd(&g, &idx, &td).canonicalize();
            let got = phtd(&g, &idx, &td, &Executor::rayon(4)).canonicalize();
            assert_eq!(got, truth, "case {case}");
        }
    }

    #[test]
    fn respects_cancellation() {
        use hcd_par::{CancelToken, ParError};
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                b = b.edge(u, v);
            }
        }
        let g = b.build();
        let (idx, td) = truss_decomposition(&g);
        let exec = Executor::rayon(2);
        let token = CancelToken::new();
        token.cancel();
        exec.set_cancel(token);
        let got = try_phtd(&g, &idx, &td, &exec).map(|_| ());
        assert!(matches!(got, Err(ParError::Cancelled)));
        // Clearing the token makes the same executor usable again.
        exec.clear_cancel();
        let truth = naive_htd(&g, &idx, &td).canonicalize();
        let h = try_phtd(&g, &idx, &td, &exec).unwrap();
        assert_eq!(h.canonicalize(), truth);
    }

    #[test]
    fn every_edge_in_exactly_one_node() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (4, 0)])
            .build();
        let (idx, td) = truss_decomposition(&g);
        let h = phtd(&g, &idx, &td, &Executor::sequential());
        let total: usize = h.nodes().iter().map(|n| n.edges.len()).sum();
        assert_eq!(total, idx.len());
        for e in 0..idx.len() as u32 {
            assert!(h.node(h.tid(e)).edges.contains(&e));
        }
    }
}
