//! Truss decomposition by support peeling.

use hcd_graph::CsrGraph;

use crate::edges::EdgeIndex;

/// The trussness of every edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrussDecomposition {
    trussness: Vec<u32>,
    tmax: u32,
}

impl TrussDecomposition {
    /// Trussness of edge `id`.
    #[inline]
    pub fn trussness(&self, id: u32) -> u32 {
        self.trussness[id as usize]
    }

    /// The raw trussness array (indexed by edge id).
    pub fn as_slice(&self) -> &[u32] {
        &self.trussness
    }

    /// The largest `k` with a non-empty k-truss (0 for edgeless graphs;
    /// every edge has trussness at least 2).
    pub fn tmax(&self) -> u32 {
        self.tmax
    }

    /// Edge ids grouped by trussness: `shells()[k]` lists edges of
    /// trussness `k`, ascending.
    pub fn shells(&self) -> Vec<Vec<u32>> {
        let mut shells = vec![Vec::new(); self.tmax as usize + 1];
        for (e, &t) in self.trussness.iter().enumerate() {
            shells[t as usize].push(e as u32);
        }
        shells
    }
}

/// Computes all edge supports (triangles per edge) in `O(m^1.5)` using
/// the oriented enumeration of the paper's Algorithm 5.
fn edge_supports(g: &CsrGraph, idx: &EdgeIndex) -> Vec<u32> {
    let mut support = vec![0u32; idx.len()];
    let mut marks = vec![false; g.num_vertices()];
    for v in g.vertices() {
        let dv = g.degree(v);
        for &u in g.neighbors(v) {
            marks[u as usize] = true;
        }
        for &u in g.neighbors(v) {
            let du = g.degree(u);
            if du < dv || (du == dv && u < v) {
                for &w in g.neighbors(u) {
                    // Count each triangle once: orient by (degree, id).
                    let dw = g.degree(w);
                    if marks[w as usize] && (dw < du || (dw == du && w < u)) {
                        support[idx.eid(g, u, v) as usize] += 1;
                        support[idx.eid(g, v, w) as usize] += 1;
                        support[idx.eid(g, u, w) as usize] += 1;
                    }
                }
            }
        }
        for &u in g.neighbors(v) {
            marks[u as usize] = false;
        }
    }
    support
}

/// Serial truss decomposition (Wang & Cheng \[47\]): bucket-peel edges in
/// nondecreasing support; removing an edge of support `s` fixes its
/// trussness at `s + 2` (monotonically clamped) and decrements the
/// support of every edge it formed a still-alive triangle with.
pub fn truss_decomposition(g: &CsrGraph) -> (EdgeIndex, TrussDecomposition) {
    let idx = EdgeIndex::new(g);
    let m = idx.len();
    if m == 0 {
        return (
            idx,
            TrussDecomposition {
                trussness: Vec::new(),
                tmax: 0,
            },
        );
    }
    let mut support = edge_supports(g, &idx);

    // Bucket sort edges by support (same structure as Batagelj-Zaversnik).
    let max_sup = support.iter().copied().max().unwrap() as usize;
    let mut bin = vec![0usize; max_sup + 2];
    for &s in &support {
        bin[s as usize + 1] += 1;
    }
    for i in 0..=max_sup {
        bin[i + 1] += bin[i];
    }
    let mut start = bin.clone();
    let mut order = vec![0u32; m];
    let mut pos = vec![0usize; m];
    {
        let mut cursor = bin;
        for e in 0..m as u32 {
            let s = support[e as usize] as usize;
            order[cursor[s]] = e;
            pos[e as usize] = cursor[s];
            cursor[s] += 1;
        }
    }

    let mut removed = vec![false; m];
    let mut trussness = vec![0u32; m];
    let mut k_floor = 0u32; // supports never drop below the current peel level
    for i in 0..m {
        let e = order[i];
        removed[e as usize] = true;
        let s = support[e as usize];
        k_floor = k_floor.max(s);
        trussness[e as usize] = k_floor + 2;

        // Decrement the other two edges of each still-alive triangle
        // through e.
        let (u, v) = idx.endpoints(e);
        let (a, b) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        for &w in g.neighbors(a) {
            if w == b || !g.has_edge(w, b) {
                continue;
            }
            let e1 = idx.eid(g, a, w);
            let e2 = idx.eid(g, b, w);
            if removed[e1 as usize] || removed[e2 as usize] {
                continue;
            }
            for other in [e1, e2] {
                let so = support[other as usize];
                if so > k_floor {
                    // Move `other` one bucket down (BZ swap trick).
                    let po = pos[other as usize];
                    let pfirst = start[so as usize];
                    let first = order[pfirst];
                    if other != first {
                        order[po] = first;
                        order[pfirst] = other;
                        pos[first as usize] = po;
                        pos[other as usize] = pfirst;
                    }
                    start[so as usize] += 1;
                    support[other as usize] = so - 1;
                }
            }
        }
    }

    let tmax = trussness.iter().copied().max().unwrap_or(0);
    (idx, TrussDecomposition { trussness, tmax })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    /// Brute-force trussness by repeated definition-based peeling.
    fn naive_trussness(g: &CsrGraph, idx: &EdgeIndex) -> Vec<u32> {
        let m = idx.len();
        let mut truss = vec![0u32; m];
        let mut alive: Vec<bool> = vec![true; m];
        let mut k = 2u32;
        let mut remaining = m;
        while remaining > 0 {
            // Repeatedly remove alive edges with < k-2 alive triangles.
            loop {
                let mut removed_any = false;
                for e in 0..m as u32 {
                    if !alive[e as usize] {
                        continue;
                    }
                    let (u, v) = idx.endpoints(e);
                    let tri = g
                        .neighbors(u)
                        .iter()
                        .filter(|&&w| {
                            w != v
                                && g.has_edge(w, v)
                                && alive[idx.eid(g, u, w) as usize]
                                && alive[idx.eid(g, v, w) as usize]
                        })
                        .count() as u32;
                    if tri < k.saturating_sub(2) {
                        alive[e as usize] = false;
                        truss[e as usize] = k - 1;
                        removed_any = true;
                        remaining -= 1;
                    }
                }
                if !removed_any {
                    break;
                }
            }
            k += 1;
            if k > m as u32 + 3 {
                // All remaining edges survive every finite k? Impossible:
                // supports are < m. Guard against infinite loops in tests.
                panic!("naive truss did not terminate");
            }
        }
        truss
    }

    #[test]
    fn triangle_has_trussness_three() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0)]).build();
        let (_, td) = truss_decomposition(&g);
        assert_eq!(td.as_slice(), &[3, 3, 3]);
        assert_eq!(td.tmax(), 3);
    }

    #[test]
    fn clique_trussness_is_its_size() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b = b.edge(u, v);
            }
        }
        let g = b.build();
        let (_, td) = truss_decomposition(&g);
        assert!(td.as_slice().iter().all(|&t| t == 6));
    }

    #[test]
    fn tree_edges_have_trussness_two() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (1, 3)]).build();
        let (_, td) = truss_decomposition(&g);
        assert_eq!(td.as_slice(), &[2, 2, 2]);
    }

    #[test]
    fn matches_naive_on_mixed_graph() {
        let g = GraphBuilder::new()
            // K4 + pendant triangle + bridge
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .edges([(3, 4), (4, 5), (5, 6), (6, 4)])
            .build();
        let (idx, td) = truss_decomposition(&g);
        assert_eq!(td.as_slice(), naive_trussness(&g, &idx).as_slice());
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        for _ in 0..20 {
            let n = rng.gen_range(4..14u32);
            let mut b = GraphBuilder::new().min_vertices(n as usize);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.4) {
                        b = b.edge(u, v);
                    }
                }
            }
            let g = b.build();
            let (idx, td) = truss_decomposition(&g);
            assert_eq!(td.as_slice(), naive_trussness(&g, &idx).as_slice(), "n={n}");
        }
    }

    #[test]
    fn shells_partition_edges() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let (_, td) = truss_decomposition(&g);
        let total: usize = td.shells().iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().min_vertices(2).build();
        let (_, td) = truss_decomposition(&g);
        assert_eq!(td.tmax(), 0);
        assert!(td.as_slice().is_empty());
    }
}
