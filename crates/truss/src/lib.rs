//! k-truss decomposition and its hierarchy (paper §VI, "Other Cohesive
//! Subgraph Model").
//!
//! A *k-truss* is a maximal subgraph in which every edge participates in
//! at least `k − 2` triangles (within the subgraph); the *trussness*
//! `t(e)` of an edge is the largest `k` whose k-truss contains it.
//! Exactly like k-cores, the k-trusses of all levels nest into a forest —
//! the **hierarchical truss decomposition (HTD)** — whose tree nodes hold
//! the edges of trussness `k` inside one (triangle-connected) k-truss.
//!
//! The paper closes by noting that the PHCD/PBKS framework transfers to
//! other hierarchical models "such as k-truss"; this crate carries that
//! out:
//!
//! * [`edges::EdgeIndex`] — dense edge ids and O(log d) arc→edge lookup;
//! * [`decompose::truss_decomposition`] — serial support-peeling
//!   (Wang–Cheng style), `O(m^1.5)`;
//! * [`hierarchy::phtd`] — **parallel HTD construction**: the PHCD
//!   paradigm verbatim, with edges in place of vertices, triangle
//!   connectivity in place of adjacency, and the same concurrent
//!   union-find-with-pivot;
//! * [`hierarchy::naive_htd`] — the brute-force oracle used in tests.

pub mod decompose;
pub mod edges;
pub mod hierarchy;

pub use decompose::{truss_decomposition, TrussDecomposition};
pub use edges::EdgeIndex;
pub use hierarchy::{naive_htd, phtd, try_phtd, Htd, TrussNode};

#[cfg(test)]
mod proptests;
