//! Property tests: PHTD matches the brute-force HTD oracle, and truss
//! invariants hold, on arbitrary graphs.

use proptest::prelude::*;

use hcd_graph::builder::build_from_edges;
use hcd_par::Executor;

use crate::decompose::truss_decomposition;
use crate::hierarchy::{naive_htd, phtd};

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn phtd_matches_oracle(edges in arb_edges(18, 90)) {
        let g = build_from_edges(edges, 0);
        let (idx, td) = truss_decomposition(&g);
        let truth = naive_htd(&g, &idx, &td).canonicalize();
        for exec in [Executor::sequential(), Executor::rayon(4), Executor::simulated(3)] {
            let got = phtd(&g, &idx, &td, &exec);
            prop_assert_eq!(got.canonicalize(), truth.clone(), "mode {}", exec.mode_name());
        }
    }

    #[test]
    fn trussness_invariants(edges in arb_edges(16, 70)) {
        let g = build_from_edges(edges, 0);
        let (idx, td) = truss_decomposition(&g);
        for e in 0..idx.len() as u32 {
            let t = td.trussness(e);
            // Every edge has trussness >= 2.
            prop_assert!(t >= 2);
            // Support within the t-class subgraph is >= t - 2.
            let (u, v) = idx.endpoints(e);
            let sup = g.neighbors(u).iter().filter(|&&w| {
                w != v && g.has_edge(w, v)
                    && td.trussness(idx.eid(&g, u, w)) >= t
                    && td.trussness(idx.eid(&g, v, w)) >= t
            }).count() as u32;
            prop_assert!(sup >= t - 2, "edge {} has {} < {}", e, sup, t - 2);
        }
    }

    #[test]
    fn htd_partitions_edges(edges in arb_edges(16, 70)) {
        let g = build_from_edges(edges, 0);
        let (idx, td) = truss_decomposition(&g);
        let h = phtd(&g, &idx, &td, &Executor::sequential());
        let total: usize = h.nodes().iter().map(|n| n.edges.len()).sum();
        prop_assert_eq!(total, idx.len());
        for (i, node) in h.nodes().iter().enumerate() {
            for &e in &node.edges {
                prop_assert_eq!(h.tid(e), i as u32);
                prop_assert_eq!(td.trussness(e), node.k);
            }
            if node.parent != crate::hierarchy::NO_NODE {
                prop_assert!(h.node(node.parent).k < node.k);
            }
        }
    }
}
