//! User-engagement analysis on the HCD (paper §I, "applications").
//!
//! The coreness of a user estimates their engagement level, and the
//! paper notes (citing [14], [15]) that (i) average engagement rises
//! with coreness and (ii) the *position in the HCD* refines the estimate
//! further. This example generates a social graph with synthetic
//! engagement (noisy, correlated with coreness) and reproduces both
//! observations.
//!
//! ```text
//! cargo run --release --example engagement_analysis
//! ```

use hcd::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let g = rmat(13, 10, None, 7);
    let exec = Executor::rayon(std::thread::available_parallelism().map_or(2, |p| p.get()));
    let cores = pkc_core_decomposition(&g, &exec);
    let hcd = phcd(&g, &cores, &exec);

    // Synthetic engagement: proportional to coreness with heavy noise
    // (mimicking check-in counts).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let engagement: Vec<f64> = g
        .vertices()
        .map(|v| {
            let base = cores.coreness(v) as f64;
            base * rng.gen_range(0.5..1.5) + rng.gen_range(0.0..2.0)
        })
        .collect();

    // Observation 1: average engagement per coreness is increasing.
    let kmax = cores.kmax() as usize;
    let mut sum = vec![0.0f64; kmax + 1];
    let mut cnt = vec![0usize; kmax + 1];
    for v in g.vertices() {
        sum[cores.coreness(v) as usize] += engagement[v as usize];
        cnt[cores.coreness(v) as usize] += 1;
    }
    println!("coreness -> avg engagement (population)");
    let mut prev = f64::NEG_INFINITY;
    let mut increasing = 0;
    let mut total_levels = 0;
    for k in 0..=kmax {
        if cnt[k] == 0 {
            continue;
        }
        let avg = sum[k] / cnt[k] as f64;
        println!("  {k:>3} -> {avg:>7.2}   ({} users)", cnt[k]);
        if avg > prev {
            increasing += 1;
        }
        total_levels += 1;
        prev = avg;
    }
    println!("monotone steps: {increasing}/{total_levels}");

    // Observation 2: within one shell, hierarchy depth separates users.
    let k_probe = (kmax / 2).max(1) as u32;
    let mut by_depth: std::collections::BTreeMap<usize, (f64, usize)> = Default::default();
    for v in g.vertices().filter(|&v| cores.coreness(v) == k_probe) {
        let (depth, _) = hierarchy_position(&hcd, v);
        let e = by_depth.entry(depth).or_insert((0.0, 0));
        e.0 += engagement[v as usize];
        e.1 += 1;
    }
    println!("\nwithin the {k_probe}-shell, engagement by hierarchy depth:");
    for (depth, (s, c)) in by_depth {
        println!("  depth {depth:>2}: avg {:>7.2} ({c} users)", s / c as f64);
    }
}
