//! Quickstart: build a graph, construct its HCD with PHCD, and search it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hcd::prelude::*;

fn main() {
    // A small social-style graph: power-law R-MAT (varied coreness).
    let g = rmat(12, 8, None, 42);
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // 1. Core decomposition (parallel PKC-style peeling).
    let exec = Executor::rayon(std::thread::available_parallelism().map_or(2, |p| p.get()));
    let cores = pkc_core_decomposition(&g, &exec);
    println!("kmax = {}", cores.kmax());

    // 2. Hierarchical core decomposition with PHCD.
    let hcd = phcd(&g, &cores, &exec);
    println!(
        "HCD: {} tree nodes, {} roots",
        hcd.num_nodes(),
        hcd.roots().len()
    );
    let per_level = cores_per_level(&hcd, cores.kmax());
    for (k, count) in per_level.iter().enumerate() {
        if *count > 0 {
            println!("  level {k:>3}: {count} k-core(s)");
        }
    }

    // 3. Search for the best k-core under two metrics.
    let ctx = SearchContext::with_executor(&g, &cores, &hcd, &exec);
    for metric in [Metric::AverageDegree, Metric::Conductance] {
        let best = pbks(&ctx, &metric, &exec).expect("non-empty graph");
        println!(
            "best {}: k={} with score {:.4} ({} vertices)",
            metric.name(),
            best.k,
            best.score,
            best.primaries.n
        );
    }

    // 4. Local query: the 3-core around vertex 0.
    if let Some(core) = core_containing(&hcd, &cores, 0, 3.min(cores.coreness(0))) {
        println!(
            "the {}-core containing vertex 0 has {} vertices",
            3.min(cores.coreness(0)),
            core.len()
        );
    }
}
