//! Incremental core maintenance on a changing graph.
//!
//! The paper's dynamic counterpart ([15] in its references) maintains
//! the hierarchy under updates; this example demonstrates the foundation
//! shipped in `hcd-dynamic`: coreness repaired locally per edge update,
//! orders of magnitude cheaper than recomputation, with the HCD
//! refreshed on demand.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use std::time::Instant;

use hcd::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let g = rmat(13, 8, None, 3);
    let mut dc = DynamicCore::from_csr(&g);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    let n = dc.graph().num_vertices() as u32;

    // Apply a batch of random insertions and deletions, maintaining
    // coreness incrementally.
    let updates = 2_000;
    let mut known_edges: Vec<(u32, u32)> = g.edges().collect();
    let t0 = Instant::now();
    let mut inserted = 0usize;
    let mut removed = 0usize;
    for _ in 0..updates {
        if rng.gen_bool(0.6) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if dc.insert_edge(u, v) {
                inserted += 1;
                known_edges.push((u, v));
            }
        } else {
            // Remove a random known edge so deletions actually land.
            let i = rng.gen_range(0..known_edges.len());
            let (u, v) = known_edges.swap_remove(i);
            removed += usize::from(dc.remove_edge(u, v));
        }
    }
    let incremental = t0.elapsed();
    println!(
        "applied {updates} updates ({inserted} inserts, {removed} removals) in {incremental:?}"
    );
    println!(
        "  -> {:?} per update (each touches only the local subcore)",
        incremental / updates
    );

    // What recomputation would have cost per update.
    let snapshot = dc.graph().to_csr();
    let t0 = Instant::now();
    let fresh = core_decomposition(&snapshot);
    let recompute = t0.elapsed();
    println!("one full recomputation: {recompute:?}");
    assert_eq!(
        dc.coreness_slice(),
        fresh.as_slice(),
        "maintenance must agree"
    );
    println!(
        "incremental was {:.0}x cheaper per update",
        recompute.as_secs_f64() / (incremental.as_secs_f64() / updates as f64)
    );

    // The hierarchy refreshes lazily after updates.
    let exec = Executor::sequential();
    let (snap, hcd) = dc.hcd(&exec);
    println!(
        "refreshed HCD: {} tree nodes over {} vertices",
        hcd.num_nodes(),
        snap.num_vertices()
    );
}
