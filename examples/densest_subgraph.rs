//! Approximate densest subgraph search (the paper's Table IV workflow).
//!
//! Compares CoreApp (kmax-core baseline), Opt-D (serial BKS), PBKS-D
//! (parallel), the exact optimum (Goldberg's flow-based algorithm), and
//! checks whether PBKS-D's output contains the maximum clique.
//!
//! ```text
//! cargo run --release --example densest_subgraph
//! ```

use std::time::Instant;

use hcd::prelude::*;

fn main() {
    // A web-crawl-style graph: power-law backbone plus link-farm cliques.
    let g = Dataset::by_abbrev("A")
        .expect("registry")
        .generate(Scale::Tiny);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let exec = Executor::rayon(std::thread::available_parallelism().map_or(2, |p| p.get()));
    let cores = pkc_core_decomposition(&g, &exec);
    let hcd = phcd(&g, &cores, &exec);
    let ctx = SearchContext::with_executor(&g, &cores, &hcd, &exec);

    // CoreApp-style baseline: the kmax-core.
    let t = Instant::now();
    let (capp_vertices, capp_davg) = coreapp(&g, &cores).expect("non-empty");
    println!(
        "CoreApp : davg {:>8.3}  |S| {:>5}  ({:?})",
        capp_davg,
        capp_vertices.len(),
        t.elapsed()
    );

    // Opt-D: serial BKS specialised to average degree.
    let t = Instant::now();
    let od = opt_d(&ctx).expect("non-empty");
    println!(
        "Opt-D   : davg {:>8.3}  |S| {:>5}  ({:?})",
        od.score,
        od.primaries.n,
        t.elapsed()
    );

    // PBKS-D: the paper's parallel search.
    let t = Instant::now();
    let pd = pbks_d(&ctx, &exec).expect("non-empty");
    println!(
        "PBKS-D  : davg {:>8.3}  |S| {:>5}  ({:?})",
        pd.score,
        pd.primaries.n,
        t.elapsed()
    );
    assert_eq!(od.score, pd.score, "Opt-D and PBKS-D must agree");

    // Exact optimum via Goldberg's parametric min-cut (density = davg/2).
    let t = Instant::now();
    let (_, exact_density) = densest_subgraph(&g).expect("non-empty");
    println!(
        "Exact   : davg {:>8.3}           ({:?})",
        2.0 * exact_density,
        t.elapsed()
    );
    assert!(
        pd.score >= exact_density, // davg >= 0.5 * exact davg
        "0.5-approximation violated"
    );
    println!(
        "approximation ratio: {:.3} (guarantee: >= 0.5)",
        pd.score / (2.0 * exact_density)
    );

    // Maximum clique containment (Table IV's MC ⊆ S* column).
    let t = Instant::now();
    let mc = max_clique(&g, &cores);
    let s_star = hcd.subtree_vertices(pd.node);
    let contained = hcd_search::clique::contained_in(&mc, &s_star);
    println!(
        "max clique: size {} ({:?}); contained in S*: {}",
        mc.len(),
        t.elapsed(),
        if contained { "yes" } else { "no" }
    );
    println!(
        "|S*|/n = {:.4}%",
        100.0 * s_star.len() as f64 / g.num_vertices() as f64
    );
}
