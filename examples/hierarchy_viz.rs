//! Hierarchy visualization (paper §I: "Graph Visualization").
//!
//! Builds the HCD of a deep synthetic hierarchy and emits Graphviz DOT
//! plus an ASCII summary of the forest.
//!
//! ```text
//! cargo run --release --example hierarchy_viz > hcd.dot && dot -Tsvg hcd.dot -o hcd.svg
//! ```

use hcd::prelude::*;

fn main() {
    let g = core_tree(3, 4, 14, 5);
    let exec = Executor::sequential();
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &exec);

    eprintln!(
        "graph: n={} m={} kmax={} | HCD: {} nodes, {} roots",
        g.num_vertices(),
        g.num_edges(),
        cores.kmax(),
        hcd.num_nodes(),
        hcd.roots().len()
    );

    // ASCII tree on stderr.
    fn walk(hcd: &Hcd, node: u32, indent: usize) {
        let n = hcd.node(node);
        eprintln!(
            "{}k={:<3} |V(T)|={:<4} |core|={}",
            "  ".repeat(indent),
            n.k,
            n.vertices.len(),
            hcd.subtree_vertices(node).len()
        );
        for &c in &n.children {
            walk(hcd, c, indent + 1);
        }
    }
    for &r in hcd.roots() {
        walk(&hcd, r, 0);
    }

    // DOT on stdout.
    println!("{}", hcd.to_dot());
}
