//! The §VI extension in action: hierarchical truss decomposition with
//! PHTD, the PHCD paradigm transferred from vertices to edges.
//!
//! ```text
//! cargo run --release --example truss_hierarchy
//! ```

use hcd::prelude::*;

fn main() {
    let g = Dataset::by_abbrev("H")
        .expect("registry")
        .generate(Scale::Tiny);
    println!("graph: n={} m={}", g.num_vertices(), g.num_edges());

    // 1. Truss decomposition (serial support peeling).
    let (idx, truss) = truss_decomposition(&g);
    println!("tmax = {}", truss.tmax());
    let shells = truss.shells();
    for (k, shell) in shells.iter().enumerate().filter(|(_, s)| !s.is_empty()) {
        println!("  trussness {k:>3}: {} edges", shell.len());
    }

    // 2. Parallel hierarchy construction (PHTD), verified against the
    //    brute-force oracle.
    let exec = Executor::rayon(std::thread::available_parallelism().map_or(2, |p| p.get()));
    let htd = phtd(&g, &idx, &truss, &exec);
    assert_eq!(
        htd.canonicalize(),
        naive_htd(&g, &idx, &truss).canonicalize(),
        "PHTD must match the definition-based oracle"
    );
    println!("HTD: {} tree nodes", htd.num_nodes());

    // 3. The innermost truss community: vertices of the deepest node.
    let deepest = (0..htd.num_nodes() as u32)
        .max_by_key(|&i| htd.node(i).k)
        .expect("non-empty graph");
    let node = htd.node(deepest);
    let mut members: Vec<u32> = htd
        .subtree_edges(deepest)
        .into_iter()
        .flat_map(|e| {
            let (u, v) = idx.endpoints(e);
            [u, v]
        })
        .collect();
    members.sort_unstable();
    members.dedup();
    println!(
        "innermost {}-truss: {} vertices, {} edges",
        node.k,
        members.len(),
        htd.subtree_edges(deepest).len()
    );
}
