//! Community-metric survey: best k-core under every metric, plus the
//! best-k extension (paper §VI).
//!
//! ```text
//! cargo run --release --example community_metrics
//! ```

use hcd::prelude::*;

fn main() {
    // A web-style stand-in: power-law backbone plus clique overlays gives
    // a rich hierarchy where different metrics pick different cores.
    let g = Dataset::by_abbrev("SK")
        .expect("registry")
        .generate(Scale::Tiny);
    let exec = Executor::rayon(std::thread::available_parallelism().map_or(2, |p| p.get()));
    let cores = pkc_core_decomposition(&g, &exec);
    let hcd = phcd(&g, &cores, &exec);
    let ctx = SearchContext::with_executor(&g, &cores, &hcd, &exec);

    println!(
        "graph: n={} m={} kmax={} |T|={}",
        g.num_vertices(),
        g.num_edges(),
        cores.kmax(),
        hcd.num_nodes()
    );
    println!("\nbest k-core per metric (PBKS, verified against serial BKS):");
    println!(
        "{:<24} {:>4} {:>10} {:>8} {:>8}",
        "metric", "k", "score", "|S|", "m(S)"
    );
    for metric in Metric::ALL {
        let best = pbks(&ctx, &metric, &exec).expect("non-empty graph");
        let serial = bks(&ctx, &metric).expect("non-empty graph");
        assert_eq!(best, serial, "PBKS and BKS disagree on {}", metric.name());
        println!(
            "{:<24} {:>4} {:>10.4} {:>8} {:>8}",
            metric.name(),
            best.k,
            best.score,
            best.primaries.n,
            best.primaries.m() as u64,
        );
    }

    println!("\nbest k over k-core *sets* (§VI extension):");
    for metric in [
        Metric::AverageDegree,
        Metric::InternalDensity,
        Metric::ClusteringCoefficient,
    ] {
        let best = best_k(&ctx, &metric, &exec).expect("non-empty graph");
        println!(
            "  {:<24} best k = {:<3} score {:.4}",
            metric.name(),
            best.k,
            best.score
        );
    }
}
