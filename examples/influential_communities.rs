//! Influential community search on the HCD (paper SVII, ICP-Index-style).
//!
//! Vertices carry influence weights; the influence of a k-core is its
//! minimum member weight. The HCD turns top-r queries into one parallel
//! min-accumulation plus a scan.
//!
//! ```text
//! cargo run --release --example influential_communities
//! ```

use hcd::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let g = Dataset::by_abbrev("A")
        .expect("registry")
        .generate(Scale::Tiny);
    let exec = Executor::rayon(std::thread::available_parallelism().map_or(2, |p| p.get()));
    let cores = pkc_core_decomposition(&g, &exec);
    let hcd = phcd(&g, &cores, &exec);
    let ctx = SearchContext::with_executor(&g, &cores, &hcd, &exec);

    // Synthetic influence: correlated with degree plus noise (hubs tend
    // to be influential).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let weights: Vec<f64> = g
        .vertices()
        .map(|v| g.degree(v) as f64 * rng.gen_range(0.5..1.5))
        .collect();

    let index = InfluenceIndex::build(&ctx, &weights, &exec);
    for k in [2u32, 4, 8] {
        println!("top-5 influential communities with minimum degree {k}:");
        for c in index.top_r(&hcd, k, 5) {
            let members = hcd.subtree_vertices(c.node);
            println!(
                "  k={:<3} influence={:<8.2} |community|={}",
                c.k,
                c.influence,
                members.len()
            );
        }
    }
}
